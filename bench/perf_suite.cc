// Perf harness for the discrete-event core: runs micro_sched_ops- and
// tab6_scalability-shaped workloads through the PerfRecorder and emits the
// schema-versioned BENCH_perf_suite.json that perf_gate diffs against the
// committed baseline (see DESIGN.md §5 for the schema and re-baselining).
//
// Phases:
//   * tab6_shape.{calendar,heap} — the Table 6 event pattern (periodic RTAs
//     with Table 5 periods, a budget timer per release that the next release
//     cancels) driven through the raw EventQueue, swept over the Table 6
//     scales (100 / 1000 / 10000 timers, equal pops each). This is the pure
//     event-core measurement: the calendar backend must clear 5x the heap's
//     events/sec across the sweep and must allocate nothing after warm-up
//     (hard assert).
//   * cancel_churn.{calendar,heap} — schedule+cancel pairs over a live set,
//     the pattern that used to grow the heap without bound.
//   * sched_op.{calendar,heap} — bare schedule+pop round trips.
//   * replan — the BM_DpWrapGlobalSlice shape (100 reserved VCPUs, 1 ms
//     global slices) measuring wall-clock ns per DP-WRAP replan.
//   * tab6_sim.{calendar,heap} — the full single-RTA-VMs experiment at
//     reduced duration, measuring end-to-end simulated events/sec + peak RSS.
//
// Flags: --out=PATH (default BENCH_perf_suite.json), --scale=F (work
// multiplier for quick local runs; the committed baseline uses 1.0).
// Exits nonzero if the zero-alloc steady-state assertion fails.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/perf/alloc_hooks.h"
#include "src/perf/perf_recorder.h"
#include "src/perf/perf_report.h"
#include "src/runner/experiment.h"
#include "src/sim/event_queue.h"
#include "src/workloads/groups.h"
#include "src/workloads/periodic.h"

namespace rtvirt {
namespace {

using perf::PerfRecorder;
using perf::PerfReport;
using perf::PhaseResult;

// The Table 6 scale sweep: timer counts matching the paper's small / mid /
// large VM populations. The heap's O(log n) sift cost grows down this list
// while the calendar stays O(1), which is exactly the scalability argument.
constexpr int kShapeSweep[] = {100, 1000, 10000, 100000};

// The Table 6 event pattern on a raw queue: every release pop reschedules
// itself one period out, schedules a budget-enforcement timer just past the
// next release, and cancels the previous budget timer (which therefore never
// fires — the dominant cancel pattern of the VCPU budget machinery).
// Callbacks capture (ShapeSim*, int) — 12 bytes, inside std::function's
// small-object buffer, so the steady state allocates nothing.
class ShapeSim {
 public:
  ShapeSim(EventQueueKind kind, int timers) : q_(kind) {
    timers_.resize(static_cast<size_t>(timers));
    for (int i = 0; i < timers; ++i) {
      timers_[static_cast<size_t>(i)].period =
          kTable5Groups[static_cast<size_t>(i) % kTable5Groups.size()].period;
      ShapeSim* self = this;
      q_.Schedule(timers_[static_cast<size_t>(i)].period * (i + 1) / timers,
                  [self, i] { self->OnRelease(i); });
    }
  }

  // Pops (and handles) `pops` release events; returns total queue ops.
  uint64_t Pump(uint64_t pops) {
    uint64_t ops = 0;
    for (uint64_t k = 0; k < pops; ++k) {
      EventQueue::Fired fired = q_.PopNext();
      now_ = fired.time;
      fired.callback();
      ops += 4;  // The pop, the cancel, and the two schedules it triggered.
    }
    return ops;
  }

  const EventQueue& queue() const { return q_; }

 private:
  struct Timer {
    TimeNs period = 0;
    EventQueue::EventId budget;
  };

  void OnRelease(int i) {
    Timer& t = timers_[static_cast<size_t>(i)];
    q_.Cancel(t.budget);
    t.budget = q_.Schedule(now_ + t.period + kNsPerUs, [] {});
    ShapeSim* self = this;
    q_.Schedule(now_ + t.period, [self, i] { self->OnRelease(i); });
  }

  EventQueue q_;
  TimeNs now_ = 0;
  std::vector<Timer> timers_;
};

const char* KindName(EventQueueKind kind) {
  return kind == EventQueueKind::kCalendar ? "calendar" : "heap";
}

PhaseResult RunTab6Shape(PerfRecorder& rec, EventQueueKind kind, uint64_t pops_per_scale) {
  // Build and warm every scale before the measured window opens: each sim
  // must have fired all timers at least once (budget ids populated, arena
  // chunks carved, calendar resizes settled) so the window is steady state.
  std::vector<std::unique_ptr<ShapeSim>> sims;
  for (int timers : kShapeSweep) {
    sims.push_back(std::make_unique<ShapeSim>(kind, timers));
    sims.back()->Pump(std::max<uint64_t>(4 * static_cast<uint64_t>(timers),
                                         pops_per_scale / 10));
  }
  std::vector<std::string> scale_keys;  // Built outside the measured window.
  for (int timers : kShapeSweep) {
    scale_keys.push_back("ns_per_pop.n" + std::to_string(timers));
  }
  rec.Begin(std::string("tab6_shape.") + KindName(kind));
  uint64_t ops = 0;
  for (size_t s = 0; s < sims.size(); ++s) {
    uint64_t t0 = perf::MonotonicNowNs();
    ops += sims[s]->Pump(pops_per_scale);
    rec.Count(scale_keys[s], static_cast<double>(perf::MonotonicNowNs() - t0) /
                                 static_cast<double>(pops_per_scale));
  }
  rec.Count("pops", static_cast<double>(pops_per_scale * sims.size()));
  return rec.End(ops);
}

PhaseResult RunCancelChurn(PerfRecorder& rec, EventQueueKind kind, uint64_t iters) {
  EventQueue q(kind);
  TimeNs t = 0;
  for (int i = 0; i < 128; ++i) {
    q.Schedule(++t + Ms(1), [] {});  // A live set the churn runs against.
  }
  for (uint64_t k = 0; k < iters / 8; ++k) {  // Warm the arena/freelist.
    EventQueue::EventId id = q.Schedule(++t, [] {});
    q.Cancel(id);
  }
  rec.Begin(std::string("cancel_churn.") + KindName(kind));
  for (uint64_t k = 0; k < iters; ++k) {
    EventQueue::EventId id = q.Schedule(++t, [] {});
    q.Cancel(id);
  }
  return rec.End(iters * 2);
}

PhaseResult RunSchedOp(PerfRecorder& rec, EventQueueKind kind, uint64_t iters) {
  EventQueue q(kind);
  TimeNs t = 0;
  for (int i = 0; i < 128; ++i) {
    q.Schedule(++t + Us(100), [] {});
  }
  for (uint64_t k = 0; k < iters / 8; ++k) {  // Warm-up.
    q.Schedule(++t + Us(100), [] {});
    q.PopNext();
  }
  rec.Begin(std::string("sched_op.") + KindName(kind));
  for (uint64_t k = 0; k < iters; ++k) {
    q.Schedule(++t + Us(100), [] {});
    q.PopNext();
  }
  return rec.End(iters * 2);
}

// One DP-WRAP global slice per ms with 100 reserved VCPUs: the recurring
// replan + dispatch cost the 250 us minimum global slice bounds.
PhaseResult RunReplan(PerfRecorder& rec, int iters) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine.num_pcpus = 15;
  Experiment exp(cfg);
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
  for (int i = 0; i < 100; ++i) {
    GuestOs* g = exp.AddGuest("vm" + std::to_string(i), 1);
    rtas.push_back(std::make_unique<PeriodicRta>(
        g, "rta", RtaParams{Ms(1), Ms(2 + (i % 7)), false}));
    rtas.back()->Start(0, Sec(100000));
  }
  exp.Run(Ms(10));
  uint64_t replans_before = exp.dpwrap()->replans();
  TimeNs t = Ms(10);
  rec.Begin("replan");
  for (int k = 0; k < iters; ++k) {
    t += Ms(1);
    exp.Run(t);
  }
  uint64_t replans = exp.dpwrap()->replans() - replans_before;
  rec.Count("replans", static_cast<double>(replans));
  return rec.End(replans);
}

// The Table 6 single-RTA-VMs scenario end to end (100 VMs, RTVirt), at a
// CI-friendly duration. Ops = simulator events processed.
PhaseResult RunTab6Sim(PerfRecorder& rec, EventQueueKind kind, TimeNs duration) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine.num_pcpus = 15;
  cfg.sim.event_queue = kind;
  Experiment exp(cfg);
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
  int vm = 0;
  for (int copy = 0; copy < 10; ++copy) {
    for (const RtaParams& params : kTable5Groups) {
      GuestOs* g = exp.AddGuest("vm" + std::to_string(vm++), 1);
      rtas.push_back(std::make_unique<PeriodicRta>(g, "rta", params));
      rtas.back()->Start(0, duration);
    }
  }
  rec.Begin(std::string("tab6_sim.") + KindName(kind));
  exp.Run(duration + Ms(500));
  uint64_t events = exp.sim().events_processed();
  rec.Count("sim_events", static_cast<double>(events));
  return rec.End(events);
}

int Run(int argc, char** argv) {
  std::string out_path = "BENCH_perf_suite.json";
  double scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      scale = std::atof(arg + 8);
    } else {
      std::fprintf(stderr, "usage: perf_suite [--out=PATH] [--scale=F]\n");
      return 2;
    }
  }
  if (scale <= 0) {
    std::fprintf(stderr, "perf_suite: --scale must be positive\n");
    return 2;
  }
  if (!perf::AllocHooksActive()) {
    std::fprintf(stderr,
                 "perf_suite: allocation hooks are not linked in — the zero-alloc "
                 "gate cannot run\n");
    return 1;
  }

  auto scaled = [scale](uint64_t n) { return static_cast<uint64_t>(static_cast<double>(n) * scale); };
  PerfRecorder rec;
  std::printf("perf_suite: event-core + DP-WRAP measurement (scale %.2f)\n", scale);

  PhaseResult shape_cal = RunTab6Shape(rec, EventQueueKind::kCalendar, scaled(400000));
  PhaseResult shape_heap = RunTab6Shape(rec, EventQueueKind::kHeap, scaled(400000));
  PhaseResult churn_cal = RunCancelChurn(rec, EventQueueKind::kCalendar, scaled(2000000));
  PhaseResult churn_heap = RunCancelChurn(rec, EventQueueKind::kHeap, scaled(2000000));
  PhaseResult sched_cal = RunSchedOp(rec, EventQueueKind::kCalendar, scaled(2000000));
  PhaseResult sched_heap = RunSchedOp(rec, EventQueueKind::kHeap, scaled(2000000));
  PhaseResult replan = RunReplan(rec, static_cast<int>(scaled(300)));
  PhaseResult sim_cal = RunTab6Sim(rec, EventQueueKind::kCalendar, Sec(2));
  PhaseResult sim_heap = RunTab6Sim(rec, EventQueueKind::kHeap, Sec(2));
  uint64_t peak_rss = perf::PeakRssKb();

  for (const PhaseResult& p : rec.phases()) {
    std::printf("  %-22s %10llu ops  %8.1f ns/op  %12.0f ops/s  %llu allocs\n",
                p.name.c_str(), static_cast<unsigned long long>(p.ops), p.NsPerOp(),
                p.OpsPerSec(), static_cast<unsigned long long>(p.allocs));
  }

  // Event throughput: popped events per wall second on the tab6 shape.
  double cal_eps = shape_cal.counters.at("pops") * 1e9 / static_cast<double>(shape_cal.wall_ns);
  double heap_eps = shape_heap.counters.at("pops") * 1e9 / static_cast<double>(shape_heap.wall_ns);
  double speedup = heap_eps > 0 ? cal_eps / heap_eps : 0;
  double replan_ns = replan.NsPerOp();
  std::printf("  tab6_shape events/sec: calendar %.0f, heap %.0f — speedup %.2fx\n",
              cal_eps, heap_eps, speedup);
  for (int timers : kShapeSweep) {
    std::string key = "ns_per_pop.n" + std::to_string(timers);
    std::printf("    n=%-6d calendar %7.1f ns/pop, heap %7.1f ns/pop\n", timers,
                shape_cal.counters.at(key), shape_heap.counters.at(key));
  }
  std::printf("  replan: %.0f ns/replan; tab6_sim: %.0f ev/s (calendar) vs %.0f ev/s "
              "(heap); peak RSS %llu KiB\n",
              replan_ns, sim_cal.OpsPerSec(), sim_heap.OpsPerSec(),
              static_cast<unsigned long long>(peak_rss));

  PerfReport report;
  report.suite = "perf_suite";
#ifdef NDEBUG
  report.meta["build"] = "Release";
#else
  report.meta["build"] = "asserts-on";
#endif
  report.Add("tab6_shape.calendar.events_per_sec", cal_eps, "events/s", true, 0.40);
  report.Add("tab6_shape.calendar.ns_per_op", shape_cal.NsPerOp(), "ns", false, 0.40);
  report.Add("tab6_shape.calendar.steady_allocs_per_op", shape_cal.AllocsPerOp(),
             "allocs/op", false, 0.0);
  report.Add("tab6_shape.heap.events_per_sec", heap_eps, "events/s", true, 0.40);
  report.Add("tab6_shape.heap.allocs_per_op", shape_heap.AllocsPerOp(), "allocs/op",
             false, 0.50);
  report.Add("tab6_shape.speedup", speedup, "x", true, 0.30);
  report.Add("cancel_churn.calendar.ns_per_op", churn_cal.NsPerOp(), "ns", false, 0.40);
  report.Add("cancel_churn.heap.ns_per_op", churn_heap.NsPerOp(), "ns", false, 0.40);
  report.Add("sched_op.calendar.ns_per_op", sched_cal.NsPerOp(), "ns", false, 0.40);
  report.Add("sched_op.heap.ns_per_op", sched_heap.NsPerOp(), "ns", false, 0.40);
  report.Add("replan.ns_per_replan", replan_ns, "ns", false, 0.50);
  // No calendar-vs-heap ratio for the full-sim phase: the event queue is a
  // small slice of its runtime, so the ratio of two short runs is runner
  // noise, not signal (the raw-queue tab6_shape.speedup is the honest one).
  report.Add("tab6_sim.events_per_sec", sim_cal.OpsPerSec(), "events/s", true, 0.50);
  report.Add("peak_rss_kb", static_cast<double>(peak_rss), "KiB", false, 0.75);
  if (!report.WriteFile(out_path)) {
    return 1;
  }
  std::printf("perf_suite: wrote %s (%zu metrics, schema v%d)\n", out_path.c_str(),
              report.metrics.size(), report.schema_version);

  // The zero-alloc steady state is an invariant, not a perf number: fail the
  // run outright if the measured window allocated at all.
  if (shape_cal.allocs != 0) {
    std::fprintf(stderr,
                 "perf_suite: FAIL — calendar steady state performed %llu allocations "
                 "(%llu bytes) over %llu ops; expected zero\n",
                 static_cast<unsigned long long>(shape_cal.allocs),
                 static_cast<unsigned long long>(shape_cal.alloc_bytes),
                 static_cast<unsigned long long>(shape_cal.ops));
    return 1;
  }
  if (speedup < 5.0) {
    std::printf("perf_suite: note — tab6_shape speedup %.2fx is below the 5x target "
                "(gated against the baseline, not here)\n", speedup);
  }
  return 0;
}

}  // namespace
}  // namespace rtvirt

int main(int argc, char** argv) { return rtvirt::Run(argc, argv); }

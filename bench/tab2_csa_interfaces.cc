// Table 2: VM configurations for the NH-Dec RTA group. For RT-Xen the VCPU
// interfaces come from compositional scheduling analysis (our CARTS
// reimplementation, 1 ms grid); for RTVirt the VCPU budget is simply the
// RTA's requirement plus the 500 us slack. Prints the same rows as Table 2.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/rtvirt/guest_channel.h"

int main() {
  using namespace rtvirt;

  bench::Header("Table 2: NH-Dec bandwidth requirements and VM configurations");
  const RtaGroup& group = kTable1Groups[4];  // NH-Dec.

  TablePrinter table({"RTA (slice,period)", "RTA bw", "RT-Xen VM (slice,period)", "RT-Xen bw",
                      "RTVirt VM (slice,period)", "RTVirt bw"});
  Bandwidth rta_total;
  Bandwidth rtxen_total;
  Bandwidth rtvirt_total;
  GuestChannelOptions slack;  // Default: the paper's 500 us.
  for (const RtaParams& rta : group.rtas) {
    PeriodicResource iface = bench::CartsInterface({rta});
    // The RTVirt "VM config" of Table 2: slice = RTA slice + 500 us slack.
    TimeNs rtvirt_slice = rta.slice + slack.budget_slack;
    Bandwidth rtvirt_bw = Bandwidth::FromSlicePeriod(rtvirt_slice, rta.period);
    rta_total += rta.bandwidth();
    rtxen_total += iface.bandwidth();
    rtvirt_total += rtvirt_bw;
    table.AddRow({"(" + std::to_string(rta.slice / kNsPerMs) + "ms," +
                      std::to_string(rta.period / kNsPerMs) + "ms)",
                  bench::Cpus(rta.bandwidth()),
                  "(" + std::to_string(iface.budget / kNsPerMs) + "ms," +
                      std::to_string(iface.period / kNsPerMs) + "ms)",
                  bench::Cpus(iface.bandwidth()),
                  "(" + TablePrinter::Fmt(ToMs(rtvirt_slice), 1) + "ms," +
                      std::to_string(rta.period / kNsPerMs) + "ms)",
                  bench::Cpus(rtvirt_bw)});
  }
  table.AddRow({"Total", bench::Cpus(rta_total) + " CPUs", "", bench::Cpus(rtxen_total) + " CPUs",
                "", bench::Cpus(rtvirt_total) + " CPUs"});
  table.Print(std::cout);
  std::cout << "\nPaper Table 2 totals: RTA 2.02 CPUs, RT-Xen 2.33 CPUs, RTVirt 2.11 CPUs\n";
  return 0;
}

// Figure 4 (with Table 3 as input): dynamic video-streaming RTAs under
// RTVirt. Four VMs with four VCPUs each run randomly arriving/leaving
// transcoding RTAs (VLC profiles of Table 3) or idle 10%-reservations for
// ten minutes. Prints the per-VM CPU-allocation time series (Figure 4a,
// downsampled), the RTA population, and the deadline-miss statistics
// (paper: 54 RTAs, five with misses, worst case 0.136%).

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/alloc_tracker.h"
#include "src/workloads/churn.h"

int main() {
  using namespace rtvirt;
  bench::Header("Figure 4: CPU allocations for dynamic video-streaming VMs (10 min, RTVirt)");

  Experiment exp(bench::Config(Framework::kRtvirt));
  DeadlineMonitor mon;
  std::vector<std::unique_ptr<ChurnDriver>> drivers;
  ChurnConfig ccfg;  // Paper defaults: 10 min, episodes U(10 s, 6 min).
  for (int v = 0; v < 4; ++v) {
    GuestOs* g = exp.AddGuest("VM" + std::to_string(v + 1), 4);
    drivers.push_back(
        std::make_unique<ChurnDriver>(g, ccfg, exp.rng().Fork(), &mon));
    drivers.back()->Start();
  }
  AllocTracker tracker(&exp.machine(), Sec(1));
  tracker.Start(ccfg.experiment_len);
  exp.Run(ccfg.experiment_len + Sec(1));

  std::cout << "Per-VM CPU allocation (% of one CPU, sampled every 20 s):\n";
  TablePrinter series({"time(s)", "VM1", "VM2", "VM3", "VM4"});
  for (size_t i = 19; i < tracker.rows().size(); i += 20) {
    const AllocTracker::Row& row = tracker.rows()[i];
    std::vector<std::string> cells{TablePrinter::Fmt(ToSec(row.time), 0)};
    for (double pct : row.vm_pct) {
      cells.push_back(TablePrinter::Fmt(pct, 1));
    }
    series.AddRow(std::move(cells));
  }
  series.Print(std::cout);

  int started = 0;
  int rejected = 0;
  for (const auto& d : drivers) {
    started += d->rtas_started();
    rejected += d->rtas_rejected();
  }
  std::cout << "\nDynamic RTAs run: " << started << " (rejected by admission: " << rejected
            << ")   [paper: 54 RTAs]\n";
  std::cout << "Jobs completed: " << mon.total_completed()
            << ", total misses: " << mon.total_misses() << "\n";
  std::cout << "RTAs with at least one miss: " << mon.TasksWithMisses()
            << " (paper: 5 of 54)\n";
  std::cout << "Worst per-RTA miss ratio: " << TablePrinter::Pct(mon.WorstTaskMissRatio(), 3)
            << " (paper: 0.136%)\n";
  std::cout << "Hypercalls (dynamic registrations/updates): "
            << exp.machine().overhead().hypercalls << "\n";
  return 0;
}

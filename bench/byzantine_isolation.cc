// Byzantine-guest isolation evaluation (trust-boundary PR): one adversarial
// VM runs every attack in the FaultPlan's adversarial repertoire against two
// well-behaved HIGH-criticality VMs on a 4-core host, and the same
// deterministic campaign is replayed under three policies:
//
//   baseline - the adversary VM is present but dormant (only its small
//              legitimate RTA runs); establishes the victims' no-attack miss
//              profile;
//   naive    - the full campaign with the trust boundary OFF (the paper's
//              protocol: the host believes every published deadline). The
//              floor-pinning deadline lies drag every global slice down to
//              the 250 us minimum, and the bandwidth thrash forces a replan
//              per call — the per-slice dispatch/migration overhead eats the
//              victims' lean slack and HIGH deadlines start missing;
//   hardened - the same campaign with DpWrapConfig::guest_trust enabled and
//              the invariant auditor watching the isolation invariant. The
//              sanitizer scores the lies, the rate limiter absorbs the storm,
//              the oscillation detector flags the thrash, and the VM is
//              quarantined to bandwidth-only scheduling within milliseconds.
//
// The victims run deliberately lean channel slack (100 us per 10 ms period,
// a fifth of the paper's 500 us default): the paper's slack hides exactly
// this class of overhead, so the bench models a consolidation-tuned
// deployment where the margin is real money and the attack surface matters.
//
// Acceptance (asserted in tests/trust_test.cc as well): hardened matches
// baseline exactly on HIGH-tier misses (0 extra) with zero isolation-audit
// violations and at least one quarantine + rehabilitation; naive shows
// measurable victim misses under the identical campaign.

#include <cstdint>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/metrics/resilience.h"
#include "src/workloads/churn.h"

namespace rtvirt::bench {
namespace {

constexpr TimeNs kRunLength = Sec(6);
constexpr int kPcpus = 4;
constexpr int kVictimVcpus = 6;  // Per victim VM; one HIGH RTA per VCPU.
constexpr TimeNs kAttackStart = Sec(1);
constexpr TimeNs kAttackEnd = Sec(4);
constexpr TimeNs kLeanSlack = Us(100);

enum class Mode { kBaseline, kNaive, kHardened };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kBaseline:
      return "baseline";
    case Mode::kNaive:
      return "naive";
    case Mode::kHardened:
      return "hardened";
  }
  return "?";
}

struct ModeResult {
  int admitted = 0;
  int total = 0;
  uint64_t ontime = 0;
  uint64_t missed = 0;
  uint64_t replans = 0;  // Host global-slice replans: the DoS amplifier.
  ResilienceCounters rc;
};

// One victim tier slot chain: a single fixed-profile episode per VCPU for the
// whole run, staggered starts, admission retried until it lands.
ChurnConfig VictimTier() {
  ChurnConfig c;
  c.experiment_len = kRunLength;
  c.min_episode = kRunLength + Sec(10);  // One episode per slot, capped at end.
  c.max_episode = kRunLength + Sec(10);
  c.max_gap = Ms(100);
  c.idle_prob = 0.0;
  c.criticality = Criticality::kHigh;
  c.profile = RtaParams{Us(3000), Ms(10)};  // 0.30 CPU x 12 VCPUs = 3.6 CPUs.
  c.admission_retry = Ms(50);
  return c;
}

ModeResult RunMode(Mode mode) {
  ExperimentConfig cfg = Config(Framework::kRtvirt, kPcpus);
  // Lean consolidation margin (see file comment): enough to drain benign
  // dispatch overhead, not enough to also absorb an attack-pinned slice rate.
  cfg.channel.budget_slack = kLeanSlack;
  if (mode == Mode::kHardened) {
    cfg.dpwrap.guest_trust.enabled = true;
    cfg.audit.enabled = true;
  }
  if (mode != Mode::kBaseline) {
    // The full repertoire, all from VM 2, overlapping in [1 s, 4 s).
    FaultPlan::AdversarialGuest lies;
    lies.kind = FaultPlan::AdversarialGuest::Kind::kDeadlineLies;
    lies.vm_index = 2;
    lies.start = kAttackStart;
    lies.end = kAttackEnd;
    lies.period = Us(200);  // Lie horizon 300 us: pins slices at the floor.
    cfg.faults.adversarial_guests.push_back(lies);
    FaultPlan::AdversarialGuest storm;
    storm.kind = FaultPlan::AdversarialGuest::Kind::kHypercallStorm;
    storm.vm_index = 2;
    storm.start = kAttackStart;
    storm.end = kAttackEnd;
    storm.period = Us(100);  // 10k garbage calls/s vs a 2k/s token bucket.
    cfg.faults.adversarial_guests.push_back(storm);
    FaultPlan::AdversarialGuest thrash;
    thrash.kind = FaultPlan::AdversarialGuest::Kind::kBandwidthThrash;
    thrash.vm_index = 2;
    thrash.start = kAttackStart;
    thrash.end = kAttackEnd;
    thrash.period = Us(500);  // A forced replan per accepted call.
    thrash.thrash_high = Bandwidth::FromDouble(0.15);  // Stays admittable.
    cfg.faults.adversarial_guests.push_back(thrash);
  }

  Experiment exp(cfg);
  GuestOs* victim_a = exp.AddGuest("victim-a", kVictimVcpus);
  GuestOs* victim_b = exp.AddGuest("victim-b", kVictimVcpus);
  GuestOs* adversary = exp.AddGuest("adversary", 2);

  DeadlineMonitor victims;
  ChurnDriver churn_a(victim_a, VictimTier(), Rng(311), &victims);
  ChurnDriver churn_b(victim_b, VictimTier(), Rng(312), &victims);
  churn_a.Start();
  churn_b.Start();

  // The adversary's legitimate cover workload: a small RTA on VCPU 0 keeps a
  // real reservation (and thus a host-read deadline slot) alive — the slot
  // its lies later land in. VCPU 1 stays channel-unmanaged; the thrash
  // campaign oscillates that one. The hog is greedy-but-legal: it soaks every
  // best-effort backfill quantum the host hands out, so the victims' supply
  // is what the *plan* gives them — exactly the multi-tenant consolidation
  // posture where a freeloading neighbor leaves no slack to hide behind.
  PeriodicRta cover(adversary, "cover", RtaParams{Ms(1), Ms(10)});
  cover.Start(0, kRunLength);
  adversary->CreateBackgroundTask("hog");

  exp.Run(kRunLength);

  ModeResult r;
  for (const ChurnDriver* churn : {&churn_a, &churn_b}) {
    for (const auto& rta : churn->rtas()) {
      ++r.total;
      if (rta->admitted_at() != kTimeNever) {
        ++r.admitted;
      }
    }
  }
  r.ontime = victims.total_completed() - victims.total_misses();
  r.missed = victims.total_misses();
  r.replans = exp.dpwrap()->replans();
  r.rc = exp.resilience();
  if (exp.auditor() != nullptr) {
    for (const AuditViolation& v : exp.auditor()->violations()) {
      std::cout << "audit violation @" << v.time << " ns [" << v.invariant << "] "
                << v.detail << "\n";
    }
  }
  if (mode == Mode::kHardened) {
    exp.PrintReport(std::cout, "byzantine_isolation/hardened");
  }
  return r;
}

int ByzantineIsolation() {
  Header("Byzantine guest vs 2 well-behaved VMs: no attack vs naive vs "
         "hardened (guest_trust)");
  TablePrinter table({"config", "vict_adm", "vict_ontime", "vict_missed", "replans",
                      "lies", "storm", "thrash", "lie_rej", "rate_rej", "quarantines",
                      "releases", "audit"});
  ModeResult baseline, naive, hardened;
  for (Mode mode : {Mode::kBaseline, Mode::kNaive, Mode::kHardened}) {
    ModeResult r = RunMode(mode);
    table.AddRow({ModeName(mode), std::to_string(r.admitted) + "/" + std::to_string(r.total),
                  std::to_string(r.ontime), std::to_string(r.missed),
                  std::to_string(r.replans),
                  std::to_string(r.rc.adversarial_deadline_lies),
                  std::to_string(r.rc.adversarial_storm_calls),
                  std::to_string(r.rc.adversarial_thrash_calls),
                  std::to_string(r.rc.deadline_lie_rejections),
                  std::to_string(r.rc.hypercall_rate_rejections),
                  std::to_string(r.rc.quarantines), std::to_string(r.rc.quarantine_releases),
                  std::to_string(r.rc.isolation_violations) + "/" +
                      std::to_string(r.rc.audit_checks)});
    switch (mode) {
      case Mode::kBaseline:
        baseline = r;
        break;
      case Mode::kNaive:
        naive = r;
        break;
      case Mode::kHardened:
        hardened = r;
        break;
    }
  }
  table.Print(std::cout);

  bool contained = hardened.missed == baseline.missed &&
                   hardened.admitted == hardened.total && baseline.missed == 0;
  bool isolated = hardened.rc.audit_checks > 0 && hardened.rc.isolation_violations == 0 &&
                  hardened.rc.audit_violations == 0;
  bool defended = hardened.rc.quarantines > 0 && hardened.rc.quarantine_releases > 0 &&
                  hardened.rc.deadline_lie_rejections > 0 &&
                  hardened.rc.hypercall_rate_rejections > 0;
  bool naive_shows = naive.missed > 0;
  std::cout << "check: hardened victim misses " << hardened.missed << " == baseline "
            << baseline.missed << " => " << (contained ? "PASS" : "FAIL")
            << " (0 extra HIGH-tier misses under attack)\n";
  std::cout << "check: isolation violations " << hardened.rc.isolation_violations << "/"
            << hardened.rc.audit_checks << " checks, audit total "
            << hardened.rc.audit_violations << " => " << (isolated ? "PASS" : "FAIL")
            << " (well-behaved allocations met their fluid share)\n";
  std::cout << "check: quarantines=" << hardened.rc.quarantines
            << " releases=" << hardened.rc.quarantine_releases
            << " lie_rej=" << hardened.rc.deadline_lie_rejections
            << " rate_rej=" << hardened.rc.hypercall_rate_rejections << " => "
            << (defended ? "PASS" : "FAIL")
            << " (every defense fired; the VM was rehabilitated after the campaign)\n";
  std::cout << "check: naive victim misses " << naive.missed << " => "
            << (naive_shows ? "PASS" : "FAIL")
            << " (the same campaign demonstrably hurts without the boundary)\n";
  return contained && isolated && defended && naive_shows ? 0 : 1;
}

}  // namespace
}  // namespace rtvirt::bench

int main() { return rtvirt::bench::ByzantineIsolation(); }

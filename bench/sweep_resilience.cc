// Sweep-runner resilience evaluation (robustness PR): injects the failure
// taxonomy of DESIGN.md §8 — flaky soft failures, RTVIRT_CHECK invariant
// violations, hard aborts, cooperative and hard hangs — into scripted shard
// bodies and checks that the supervisor turns every one of them into a
// recorded outcome instead of a dead harness:
//
//   containment - a check failure or abort inside one shard leaves every
//                 other shard's result intact;
//   recovery    - transient failures clear within the attempt budget and are
//                 reported as recovered, with retries/timeouts/crashes
//                 tallied;
//   exhaustion  - a permanently broken shard ends as a counted, reported
//                 `exhausted` outcome (rep.ok() == false), never a silent
//                 drop or a hang;
//   determinism - the merged report is byte-identical across --jobs=1/4/8
//                 even with crashes and watchdog kills in the mix (process
//                 isolation, so the jobs=1 serial path contains them too).
//
// Shard behavior is scripted purely from (shard, attempt), so every run of
// every scenario is reproducible.

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/sweep/proc_isolate.h"
#include "src/sweep/sweep.h"

namespace rtvirt::bench {
namespace {

using sweep::AttemptKind;
using sweep::Isolation;
using sweep::Outcome;
using sweep::RunSweep;
using sweep::ShardContext;
using sweep::ShardResult;
using sweep::SweepConfig;
using sweep::SweepReport;

bool Check(const std::string& what, bool ok, bool& failed) {
  std::cout << "check: " << what << " => " << (ok ? "PASS" : "FAIL") << "\n";
  failed = failed || !ok;
  return ok;
}

// Thread-mode containment: flaky, check-failing and cooperatively hanging
// shards all recover in-process; the clean shard is never disturbed.
void ThreadContainment(bool& failed) {
  Header("Thread-mode containment: flaky / check-failure / cooperative hang "
         "recover within the attempt budget");
  SweepConfig cfg;
  cfg.jobs = 4;
  cfg.max_attempts = 3;
  cfg.shard_deadline_ms = 1500;
  cfg.backoff_initial_ms = 1;
  SweepReport rep = RunSweep(cfg, 4, [](const ShardContext& ctx) {
    ShardResult r;
    switch (ctx.shard) {
      case 1:  // Soft failure on the first attempt.
        if (ctx.attempt == 1) {
          r.ok = false;
          r.reason = "injected flaky failure";
          return r;
        }
        break;
      case 2:  // Scheduler-invariant violation on the first attempt.
        RTVIRT_CHECK(ctx.attempt > 1, "injected invariant violation (shard %d)",
                     ctx.shard);
        break;
      case 3:  // Hang until the watchdog cancels the attempt (bounded).
        if (ctx.attempt == 1) {
          for (int i = 0; i < 2000 && !ctx.Cancelled(); ++i) {
            sweep::RealClock()->SleepMs(5);
          }
          r.ok = false;
          r.reason = "hung until cancelled";
          return r;
        }
        break;
      default:
        break;
    }
    r.report = "shard " + std::to_string(ctx.shard) + " payload";
    return r;
  });
  std::cout << rep.Merged();
  Check("all shards terminal and clean (clean=4, unresolved=0)",
        rep.ok() && rep.clean == 4, failed);
  Check("three shards recovered after injected failures", rep.recovered == 3, failed);
  Check("check failure captured, not fatal", rep.check_failures == 1, failed);
  Check("watchdog reclaimed the cooperative hang",
        rep.timeouts >= 1 &&
            rep.shards[3].last_failure == AttemptKind::kTimeout,
        failed);
  Check("untouched shard report survived",
        rep.shards[0].report == "shard 0 payload", failed);
}

// Exhaustion: a permanently broken shard consumes its budget and becomes a
// counted `exhausted` outcome while its neighbors finish clean.
void Exhaustion(bool& failed) {
  Header("Exhaustion: a permanently failing shard is quarantined and counted, "
         "not silently dropped");
  SweepConfig cfg;
  cfg.jobs = 2;
  cfg.max_attempts = 3;
  cfg.backoff_initial_ms = 1;
  SweepReport rep = RunSweep(cfg, 3, [](const ShardContext& ctx) {
    ShardResult r;
    if (ctx.shard == 1) {
      r.ok = false;
      r.reason = "injected permanent failure";
      return r;
    }
    r.report = "shard " + std::to_string(ctx.shard) + " payload";
    return r;
  });
  std::cout << rep.Merged();
  Check("sweep reports the unresolved shard (ok() == false, unresolved=1)",
        !rep.ok() && rep.unresolved == 1, failed);
  Check("broken shard exhausted its full budget",
        rep.shards[1].outcome == Outcome::kExhausted && rep.shards[1].attempts == 3,
        failed);
  Check("neighbors unaffected (clean=2)", rep.clean == 2, failed);
}

// Determinism: with hard aborts and watchdog SIGKILLs in the mix (process
// isolation so even jobs=1 contains them), the merged report is
// byte-identical for any jobs count.
void MergeDeterminism(bool& failed) {
  Header("Merge determinism: byte-identical report across jobs=1/4/8 with "
         "crashes and watchdog kills injected");
  if (!sweep::ProcessIsolationSupported()) {
    std::cout << "skipped: no fork() on this platform\n";
    return;
  }
  const sweep::ShardFn fn = [](const ShardContext& ctx) {
    ShardResult r;
    switch (ctx.shard % 4) {
      case 1:  // Hard crash on the first attempt (dies in the forked child).
        // SIGKILL, not abort(): uncatchable, so no sanitizer signal handler
        // writes a PID-bearing report to the captured stderr — the crash
        // reason stays byte-stable under ASan/TSan too.
        if (ctx.attempt == 1) {
          std::raise(SIGKILL);
        }
        break;
      case 2:  // Hard hang on the first attempt: only SIGKILL reclaims it.
        if (ctx.attempt == 1) {
          for (int i = 0; i < 10000; ++i) {
            sweep::RealClock()->SleepMs(10);
          }
        }
        break;
      case 3:  // Flaky soft failure.
        if (ctx.attempt == 1) {
          r.ok = false;
          r.reason = "injected flaky failure";
          return r;
        }
        break;
      default:
        break;
    }
    r.report = "shard " + std::to_string(ctx.shard) + " seed " +
               std::to_string(ctx.seed);
    return r;
  };
  SweepConfig cfg;
  cfg.isolation = Isolation::kProcess;
  cfg.max_attempts = 2;
  cfg.shard_deadline_ms = 2000;
  cfg.backoff_initial_ms = 1;
  cfg.base_seed = 7;
  std::string merged_serial;
  bool identical = true;
  bool contained = true;
  for (int jobs : {1, 4, 8}) {
    cfg.jobs = jobs;
    SweepReport rep = RunSweep(cfg, 8, fn);
    if (!(rep.ok() && rep.crashes == 2 && rep.timeouts == 2)) {
      contained = false;
      std::cout << "unexpected counters at jobs=" << jobs << ":\n" << rep.Merged();
    }
    if (jobs == 1) {
      merged_serial = rep.Merged();
      std::cout << merged_serial;
    } else if (rep.Merged() != merged_serial) {
      identical = false;
      std::cout << "merged report diverged at jobs=" << jobs << ":\n" << rep.Merged();
    }
  }
  Check("aborts and hangs contained at every jobs count (crashes=2, timeouts=2)",
        contained, failed);
  Check("merged report byte-identical across jobs=1/4/8", identical, failed);
}

}  // namespace
}  // namespace rtvirt::bench

int main() {
  bool failed = false;
  rtvirt::bench::ThreadContainment(failed);
  rtvirt::bench::Exhaustion(failed);
  rtvirt::bench::MergeDeterminism(failed);
  return failed ? 1 : 0;
}

// Figure 1: the motivational example. Three VMs (VM1 (5,15), VM2 (5,10),
// VM3 (5,30)) sharing one CPU under two-level EDF without cross-layer
// awareness: RTA2 inside VM1 misses a large share of its deadlines even
// though the VMs use exactly 100% of the CPU. Under RTVirt, the identical
// scenario has zero misses. Prints the VMM-level schedule trace (Figure 1a)
// and the per-RTA miss pattern (Figure 1b).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"

namespace rtvirt {
namespace {

struct Result {
  DeadlineMonitor rta1;
  DeadlineMonitor rta2;
  std::vector<std::string> trace;
};

ExperimentConfig IdealConfig(Framework fw) {
  ExperimentConfig cfg = bench::Config(fw, 1);
  // The example is idealized: the VM parameters use exactly 100% of the CPU.
  cfg.machine.context_switch_cost = 0;
  cfg.machine.migration_cost = 0;
  cfg.machine.hypercall_cost = 0;
  cfg.server_edf.pick_cost = 0;
  cfg.dpwrap.pick_cost = 0;
  cfg.dpwrap.replan_cost_base = 0;
  cfg.dpwrap.replan_cost_per_log = 0;
  cfg.channel.budget_slack = 0;
  return cfg;
}

Result RunScenario(Framework fw, TimeNs duration) {
  Experiment exp(IdealConfig(fw));
  Result result;
  GuestOs* vm1 = exp.AddGuest("VM1", 1);
  GuestOs* vm2 = exp.AddGuest("VM2", 1);
  GuestOs* vm3 = exp.AddGuest("VM3", 1);
  // Every VM also hosts background work, so each consumes its full slice
  // exactly as Figure 1a depicts.
  vm1->CreateBackgroundTask("bga1");
  vm2->CreateBackgroundTask("bga2");
  vm3->CreateBackgroundTask("bga3");

  if (fw == Framework::kVanillaEdf) {
    exp.SetVcpuServer(vm1->vm()->vcpu(0), ServerParams{Ms(5), Ms(15)});
    exp.SetVcpuServer(vm2->vm()->vcpu(0), ServerParams{Ms(5), Ms(10)});
    exp.SetVcpuServer(vm3->vm()->vcpu(0), ServerParams{Ms(5), Ms(30)});
  }

  // Record the first 60 ms of VMM-level dispatches (Figure 1a).
  exp.machine().SetDispatchTracer([&](TimeNs t, const Pcpu&, const Vcpu& v, bool) {
    if (t <= Ms(60)) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "  t=%5.1fms  %s", ToMs(t), v.vm()->name().c_str());
      result.trace.push_back(buf);
    }
  });

  PeriodicRta rta1(vm1, "RTA1", RtaParams{Ms(1), Ms(15), false});
  PeriodicRta rta2(vm1, "RTA2", RtaParams{Ms(4), Ms(15), false});
  PeriodicRta load2(vm2, "VM2-load", RtaParams{Ms(5), Ms(10), false});
  PeriodicRta load3(vm3, "VM3-load", RtaParams{Ms(5), Ms(30), false});
  rta1.task()->set_observer(&result.rta1);
  rta2.task()->set_observer(&result.rta2);
  rta1.Start(0, duration);
  // RTA2 arrives after VM1's slice has passed each period (the figure's
  // phase): without cross-layer awareness the VMM cannot know that.
  rta2.Start(Ms(11), duration);
  load2.Start(0, duration);
  load3.Start(0, duration);
  exp.Run(duration + Ms(50));
  return result;
}

void Report(const char* name, const Result& r) {
  std::cout << name << ":\n";
  TablePrinter table({"RTA", "(slice,period)", "jobs", "misses", "miss ratio"});
  table.AddRow({"RTA1", "(1ms,15ms)", std::to_string(r.rta1.total_completed()),
                std::to_string(r.rta1.total_misses()),
                TablePrinter::Pct(r.rta1.TotalMissRatio())});
  table.AddRow({"RTA2", "(4ms,15ms)", std::to_string(r.rta2.total_completed()),
                std::to_string(r.rta2.total_misses()),
                TablePrinter::Pct(r.rta2.TotalMissRatio())});
  table.Print(std::cout);
}

}  // namespace
}  // namespace rtvirt

int main() {
  using namespace rtvirt;
  bench::Header("Figure 1: two-level EDF without cross-layer awareness");
  Result vanilla = RunScenario(Framework::kVanillaEdf, Sec(10));
  std::cout << "VMM-level EDF schedule (first dispatches, Figure 1a):\n";
  for (size_t i = 0; i < vanilla.trace.size() && i < 14; ++i) {
    std::cout << vanilla.trace[i] << "\n";
  }
  Report("\nVanilla two-level EDF (paper: RTA2 misses every other deadline)", vanilla);

  bench::Header("Same scenario under RTVirt cross-layer scheduling");
  Result rtvirt = RunScenario(Framework::kRtvirt, Sec(10));
  Report("RTVirt (paper: no deadline misses)", rtvirt);
  return 0;
}

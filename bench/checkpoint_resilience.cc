// Checkpoint/restore resilience evaluation (DESIGN.md §10):
//
//   crash-resume  - a supervised sweep whose shards persist checkpoints every
//                   50 virtual ms gets crash (SIGKILL), hard-hang (watchdog
//                   SIGKILL) and soft failures injected on every first
//                   attempt; the retry resumes from the last good checkpoint
//                   and the per-shard payload reports (workload counters +
//                   final state digest) must be byte-identical to an
//                   uninterrupted fault-free sweep of the same seeds, at
//                   --jobs = 1, 4 and 8;
//   cheap resume  - resumes restart from the last persisted boundary, never
//                   t=0: re-simulated virtual time (fail point minus resume
//                   point, from the merged report's resumed@ counters) stays
//                   under 10% of the shard horizon;
//   divergence    - the replay-verify auditor, fed a deliberately perturbed
//                   twin (one stolen RNG draw after interval 3), pinpoints
//                   the first divergent interval and names the forked
//                   component (rng) — every other section digest still
//                   matches.
//
// --smoke runs the single jobs=4 crash-resume scenario (the TSan CI job).
// Exits nonzero on any gate failure.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench/bench_util.h"
#include "src/checkpoint/checkpoint.h"
#include "src/runner/ckpt_scenario.h"
#include "src/sweep/proc_isolate.h"
#include "src/sweep/sweep.h"

namespace rtvirt::bench {
namespace {

using sweep::Outcome;
using sweep::RunSweep;
using sweep::ShardContext;
using sweep::ShardResult;
using sweep::SweepConfig;
using sweep::SweepReport;

constexpr TimeNs kHorizon = Ms(800);
constexpr int64_t kCheckpointEveryMs = 50;
// First boundary at or past 70% of the horizon: the injected failure point.
constexpr TimeNs kFailBoundary = Ms(600);
constexpr int kShards = 6;

bool Check(const std::string& what, bool ok, bool& failed) {
  std::cout << "check: " << what << " => " << (ok ? "PASS" : "FAIL") << "\n";
  failed = failed || !ok;
  return ok;
}

// Failure script per shard, applied on every first attempt of an injected
// sweep. Two clean shards bracket the faulty ones so containment is visible.
enum class Mode { kClean, kCrash, kHang, kSoftFail };
Mode ModeOf(int shard) {
  switch (shard) {
    case 1:
    case 4:
      return Mode::kCrash;
    case 2:
      return Mode::kHang;
    case 3:
      return Mode::kSoftFail;
    default:
      return Mode::kClean;
  }
}

// The shard body: the canonical checkpoint scenario, run boundary by
// boundary. With a checkpoint path it persists at every boundary and resumes
// from the newest parseable file; a corrupt or unreadable file falls back to
// a cold start (loud in the report, never silent partial state).
ShardResult ShardBody(const ShardContext& ctx, bool inject) {
  CkptScenarioOptions opt;
  opt.seed = ctx.seed;
  opt.horizon = kHorizon;
  auto s = BuildCkptScenario(opt);
  ShardResult r;
  TimeNs start_t = 0;
  if (!ctx.checkpoint_path.empty()) {
    std::string bytes;
    if (ckpt::ReadFileToString(ctx.checkpoint_path, &bytes)) {
      ckpt::Image image;
      std::string err = ckpt::Image::Parse(bytes, &image);
      if (err.empty()) {
        err = s->exp->RestoreCheckpoint(image);
      }
      if (err.empty()) {
        start_t = s->exp->sim().Now();
        r.resumed = true;
        r.resume_point_ns = start_t;
      } else {
        // Restore may have partially cleared the experiment: rebuild from
        // scratch rather than continue on half-applied state.
        s = BuildCkptScenario(opt);
      }
    }
  }
  if (!r.resumed) {
    s->Start();
  }
  const TimeNs interval = Ms(kCheckpointEveryMs);
  ckpt::StateDigest final_digest;
  for (TimeNs boundary = interval; boundary <= kHorizon; boundary += interval) {
    if (boundary <= start_t) {
      continue;
    }
    s->exp->Run(boundary);
    if (inject && ctx.attempt == 1 && boundary >= kFailBoundary) {
      switch (ModeOf(ctx.shard)) {
        case Mode::kCrash:
          std::raise(SIGKILL);  // Hard child death (kProcess isolation).
          break;
        case Mode::kHang:
          for (;;) {  // Hard hang: only the watchdog SIGKILL ends this.
            sweep::RealClock()->SleepMs(100);
          }
          break;
        case Mode::kSoftFail:
          r.ok = false;
          r.reason = "injected soft failure at t=" + std::to_string(boundary) + "ns";
          return r;
        case Mode::kClean:
          break;
      }
    }
    ckpt::Image image;
    std::string err = s->exp->SaveCheckpoint(&image);
    if (!err.empty()) {
      r.ok = false;
      r.reason = err;
      return r;
    }
    if (boundary == kHorizon) {
      final_digest = ckpt::DigestOf(image);
    }
    if (!ctx.checkpoint_path.empty()) {
      err = ckpt::WriteFileAtomic(ctx.checkpoint_path, image.Serialize());
      if (!err.empty()) {
        r.ok = false;
        r.reason = err;
        return r;
      }
    }
  }
  char digest_hex[20];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                static_cast<unsigned long long>(final_digest.combined));
  r.report = "shard " + std::to_string(ctx.shard) + " seed=" + std::to_string(ctx.seed) +
             " completed=" + std::to_string(s->monitor.total_completed()) +
             " misses=" + std::to_string(s->monitor.total_misses()) + " final=" +
             digest_hex + "\n";
  return r;
}

std::string PayloadOf(const SweepReport& rep) {
  std::string payload;
  for (const auto& shard : rep.shards) {
    payload += shard.report;
  }
  return payload;
}

// A fresh private directory for one sweep's checkpoint files.
std::string MakeCheckpointDir() {
  char tmpl[] = "/tmp/rtvirt_ckpt_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::cerr << "mkdtemp failed\n";
    std::exit(1);
  }
  return dir;
}

void RemoveCheckpointDir(const std::string& dir) {
  for (int i = 0; i < kShards; ++i) {
    std::remove((dir + "/shard." + std::to_string(i) + ".ckpt").c_str());
  }
  ::rmdir(dir.c_str());
}

void CrashResumeSweep(int jobs, const std::string& reference_payload,
                      int64_t watchdog_ms, bool& failed) {
  Header("Crash-resume sweep at --jobs=" + std::to_string(jobs) +
         ": SIGKILL / hard hang / soft failure on every first attempt");
  std::string dir = MakeCheckpointDir();
  SweepConfig cfg;
  cfg.jobs = jobs;
  cfg.isolation = sweep::Isolation::kProcess;
  cfg.max_attempts = 3;
  cfg.shard_deadline_ms = watchdog_ms;
  cfg.backoff_initial_ms = 1;
  cfg.base_seed = 7;
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every_ms = kCheckpointEveryMs;
  SweepReport rep =
      RunSweep(cfg, kShards, [](const ShardContext& ctx) { return ShardBody(ctx, true); });
  std::cout << rep.Merged();
  RemoveCheckpointDir(dir);

  Check("all shards clean after resume", rep.ok() && rep.clean == kShards, failed);
  Check("every injected shard recovered", rep.recovered == 4, failed);
  Check("every recovery resumed from a checkpoint (not t=0)", rep.resumed == 4, failed);
  Check("merged payload byte-identical to uninterrupted fault-free run",
        PayloadOf(rep) == reference_payload, failed);
  bool cheap = true;
  for (int i = 0; i < kShards; ++i) {
    const sweep::ShardOutcome& out = rep.shards[static_cast<size_t>(i)];
    if (ModeOf(i) == Mode::kClean) {
      cheap = cheap && !out.resumed;
      continue;
    }
    // The failure struck at kFailBoundary with a checkpoint persisted one
    // interval earlier: re-simulated virtual time must stay under 10% of the
    // horizon.
    cheap = cheap && out.resumed && out.resume_point_ns > 0 &&
            (kFailBoundary - out.resume_point_ns) * 10 < kHorizon;
  }
  Check("re-simulated virtual time after last checkpoint < 10% of horizon", cheap,
        failed);
}

void ReplayVerifyPinpoint(bool& failed) {
  Header("Divergence auditor: a twin perturbed by one RNG draw after interval 3");
  const TimeNs interval = Ms(50);
  const int intervals = 8;
  std::vector<IntervalDigest> expected;
  std::vector<IntervalDigest> actual;
  for (int pass = 0; pass < 2; ++pass) {
    CkptScenarioOptions opt;
    opt.seed = 7;
    opt.horizon = interval * intervals;
    auto s = BuildCkptScenario(opt);
    s->Start();
    std::vector<IntervalDigest>& trail = pass == 0 ? expected : actual;
    for (int i = 0; i < intervals; ++i) {
      TimeNs boundary = interval * (i + 1);
      s->exp->Run(boundary);
      ckpt::Image image;
      std::string err = s->exp->SaveCheckpoint(&image);
      if (!err.empty()) {
        std::cerr << err << "\n";
        failed = true;
        return;
      }
      trail.push_back(IntervalDigest{i, boundary, ckpt::DigestOf(image)});
      if (pass == 1 && i == 3) {
        s->exp->rng().UniformInt(0, 1);  // The deliberate fork.
      }
    }
  }
  DivergenceReport report = CompareTrails(expected, actual);
  std::cout << report.summary;
  Check("auditor flags the perturbed twin", report.diverged, failed);
  Check("first divergent interval is 4 (first boundary after the fork)",
        report.interval == 4, failed);
  Check("forked component list is exactly {rng}",
        report.forked == std::vector<std::string>{"rng"}, failed);
}

int Main(int argc, char** argv) {
  bool smoke = false;
  int64_t watchdog_ms = 4000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--watchdog-ms=", 0) == 0) {
      watchdog_ms = std::atoll(arg.c_str() + std::strlen("--watchdog-ms="));
    } else {
      std::cerr << "usage: checkpoint_resilience [--smoke] [--watchdog-ms=N]\n";
      return 1;
    }
  }
  if (!sweep::ProcessIsolationSupported()) {
    std::cout << "checkpoint_resilience: process isolation unsupported; skipping\n";
    return 0;
  }
  bool failed = false;

  // The uninterrupted fault-free reference: same seeds, no injection, no
  // checkpointing. Its per-shard payloads are the byte-identity target.
  Header("Reference: uninterrupted fault-free sweep of the same seeds");
  SweepConfig ref_cfg;
  ref_cfg.jobs = 4;
  ref_cfg.isolation = sweep::Isolation::kProcess;
  ref_cfg.max_attempts = 1;
  ref_cfg.base_seed = 7;
  SweepReport ref = RunSweep(ref_cfg, kShards,
                             [](const ShardContext& ctx) { return ShardBody(ctx, false); });
  std::cout << ref.Merged();
  std::string reference_payload = PayloadOf(ref);
  std::cout << reference_payload;
  Check("reference sweep clean", ref.ok() && ref.resumed == 0, failed);

  if (smoke) {
    CrashResumeSweep(4, reference_payload, watchdog_ms, failed);
  } else {
    for (int jobs : {1, 4, 8}) {
      CrashResumeSweep(jobs, reference_payload, watchdog_ms, failed);
    }
    ReplayVerifyPinpoint(failed);
  }

  std::cout << "\n" << (failed ? "FAILED" : "OK") << "\n";
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace rtvirt::bench

int main(int argc, char** argv) { return rtvirt::bench::Main(argc, argv); }

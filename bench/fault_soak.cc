// Randomized multi-seed PCPU-fault soak (robustness PR, CI weekly job).
//
// Each seed derives a fresh random fault plan — transient core outages,
// frequency throttles, and the occasional permanent failure, laid out
// non-overlapping per core so FaultPlan::Validate accepts it — and drives a
// churned two-tier workload through it with the full recovery stack enabled
// (pcpu_recovery + overload renegotiation + invariant auditor). The process
// exits nonzero if any seed ends with audit violations, an unarmed auditor,
// or a fault path that never fired; RTVIRT_CHECK failures abort outright.
// Under ASan/UBSan (the CI configuration) this doubles as a memory/UB sweep
// over the whole evacuation/re-plan/renegotiation machinery.
//
// RTVIRT_SOAK_SEEDS overrides the seed count (default 5 keeps a local run
// in seconds; the weekly job raises it).

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/resilience.h"
#include "src/workloads/churn.h"

namespace rtvirt::bench {
namespace {

constexpr TimeNs kRun = Sec(6);
constexpr int kPcpus = 4;

// A random but always-valid plan: per core, an ordered walk of the run
// leaves every generated window disjoint from its predecessors by
// construction. Core 0 is never faulted so the machine always retains
// capacity to renegotiate over.
FaultPlan RandomPlan(uint64_t seed) {
  Rng rng(seed * 7919 + 17);
  FaultPlan plan;
  plan.seed = seed;
  for (int core = 1; core < kPcpus; ++core) {
    TimeNs cursor = rng.UniformTime(Ms(200), Sec(1));
    while (cursor < kRun - Sec(1)) {
      FaultPlan::PcpuFault f;
      f.pcpu = core;
      f.at = cursor;
      double roll = rng.Uniform(0.0, 1.0);
      if (roll < 0.1) {
        f.kind = FaultPlan::PcpuFault::Kind::kPermanentFailure;
        plan.pcpu_faults.push_back(f);
        break;  // Nothing may follow a permanent failure on this core.
      }
      TimeNs len = rng.UniformTime(Ms(300), Sec(2));
      f.until = std::min(cursor + len, kRun + Sec(1));
      if (roll < 0.5) {
        f.kind = FaultPlan::PcpuFault::Kind::kTransientOffline;
      } else {
        f.kind = FaultPlan::PcpuFault::Kind::kDegrade;
        f.speed = rng.Uniform(0.3, 0.9);
      }
      plan.pcpu_faults.push_back(f);
      cursor = f.until + rng.UniformTime(Ms(200), Sec(1));
    }
  }
  return plan;
}

struct SoakResult {
  ResilienceCounters rc;
  size_t planned_faults = 0;
  bool ok = false;
  std::string why;
};

SoakResult SoakOne(uint64_t seed) {
  ExperimentConfig cfg = Config(Framework::kRtvirt, kPcpus);
  cfg.seed = seed;
  cfg.dpwrap.pcpu_recovery.enabled = true;
  cfg.dpwrap.overload.enabled = true;
  cfg.audit.enabled = true;
  cfg.machine.evacuation_penalty = Us(150);
  cfg.faults = RandomPlan(seed);

  Experiment exp(cfg);
  GuestConfig gcfg;
  gcfg.overload.enabled = true;
  GuestOs* hi = exp.AddGuest("hi", 6, gcfg);
  GuestOs* lo = exp.AddGuest("lo", 4, gcfg);

  ChurnConfig hi_cfg;
  hi_cfg.experiment_len = kRun;
  hi_cfg.criticality = Criticality::kHigh;
  hi_cfg.profile = RtaParams{Us(2250), Ms(10)};
  hi_cfg.admission_retry = Ms(50);
  ChurnConfig lo_cfg = hi_cfg;
  lo_cfg.criticality = Criticality::kLow;
  lo_cfg.profile = RtaParams{Us(4500), Ms(10)};
  lo_cfg.elastic_min_fraction = 0.5;
  DeadlineMonitor hi_mon, lo_mon;
  ChurnDriver hi_churn(hi, hi_cfg, Rng(seed * 31 + 5), &hi_mon);
  ChurnDriver lo_churn(lo, lo_cfg, Rng(seed * 31 + 6), &lo_mon);
  hi_churn.Start();
  lo_churn.Start();
  exp.Run(kRun);

  SoakResult r;
  r.rc = exp.resilience();
  r.planned_faults = cfg.faults.pcpu_faults.size();
  if (exp.auditor() == nullptr || r.rc.audit_checks == 0) {
    r.why = "auditor never ran";
  } else if (r.rc.audit_violations > 0) {
    r.why = "audit violations";
    for (const AuditViolation& v : exp.auditor()->violations()) {
      std::cout << "  violation @" << v.time << " ns [" << v.invariant << "] " << v.detail
                << "\n";
    }
  } else if (r.planned_faults > 0 &&
             r.rc.pcpu_offline_events + r.rc.pcpu_degrade_events == 0) {
    r.why = "planned faults never fired";
  } else {
    r.ok = true;
  }
  return r;
}

int Soak() {
  int seeds = 5;
  if (const char* env = std::getenv("RTVIRT_SOAK_SEEDS")) {
    seeds = std::atoi(env);
  }
  Header("Randomized PCPU-fault soak: recovery + audit across " +
         std::to_string(seeds) + " seeds");
  TablePrinter table({"seed", "faults", "evac", "replans", "sheds", "resumes", "audit",
                      "result"});
  int failures = 0;
  for (int s = 1; s <= seeds; ++s) {
    SoakResult r = SoakOne(static_cast<uint64_t>(s));
    if (!r.ok) {
      ++failures;
    }
    table.AddRow({std::to_string(s), std::to_string(r.planned_faults),
                  std::to_string(r.rc.pcpu_evacuations),
                  std::to_string(r.rc.capacity_replans), std::to_string(r.rc.sheds),
                  std::to_string(r.rc.resumes),
                  std::to_string(r.rc.audit_violations) + "/" +
                      std::to_string(r.rc.audit_checks),
                  r.ok ? "ok" : r.why});
  }
  table.Print(std::cout);
  std::cout << "check: " << (seeds - failures) << "/" << seeds
            << " seeds clean => " << (failures == 0 ? "PASS" : "FAIL") << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace rtvirt::bench

int main() { return rtvirt::bench::Soak(); }

// Randomized multi-seed PCPU-fault soak (robustness PR, CI weekly job).
//
// Each seed derives a fresh random fault plan — transient core outages,
// frequency throttles, the occasional permanent failure, and an adversarial-
// guest campaign (deadline lies, a hypercall storm, and bandwidth thrash from
// a dedicated byzantine VM), laid out non-overlapping per core so
// FaultPlan::Validate accepts it — and drives a churned two-tier workload
// through it with the full recovery stack enabled (pcpu_recovery + overload
// renegotiation + guest_trust boundary + invariant auditor). Independent
// streams (plan vs per-tier churn) are decorrelated via DeriveSeed.
//
// Seeds run as shards of the supervised sweep runner (src/sweep): `--jobs=N`
// fans them out over a worker pool, a crashed or hung seed becomes a
// recorded per-shard outcome (`clean` / `failed(reason)` / `timeout` /
// `exhausted`) instead of killing the soak and losing every other seed's
// row, and the merged table is assembled in seed order — byte-identical for
// any jobs count. The process exits nonzero if any seed ends with audit
// violations, an isolation-invariant violation, an unarmed auditor, a
// fault/attack path that never fired, or an unresolved (crashed/hung past
// its attempt budget) shard. Under ASan/UBSan (the CI configuration) this
// doubles as a memory/UB sweep over the whole evacuation/re-plan/
// renegotiation/quarantine machinery.
//
// Flags (env RTVIRT_SOAK_SEEDS / RTVIRT_SOAK_JOBS are lower-precedence
// equivalents of --seeds / --jobs): --seeds=N, --jobs=N,
// --isolate=thread|process, --watchdog-ms=N, --attempts=N.

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/control/slo_controller.h"
#include "src/metrics/resilience.h"
#include "src/sweep/sweep.h"
#include "src/workloads/churn.h"

namespace rtvirt::bench {
namespace {

constexpr TimeNs kRun = Sec(6);
constexpr int kPcpus = 4;

// Per-seed stream indices for DeriveSeed: the fault plan and the two churn
// drivers draw from decorrelated engines by construction.
enum SeedStream : uint64_t {
  kPlanStream = 0,
  kHiChurnStream = 1,
  kLoChurnStream = 2,
  kSvcStream = 3,
};

// A random but always-valid plan: per core, an ordered walk of the run
// leaves every generated window disjoint from its predecessors by
// construction. Core 0 is never faulted so the machine always retains
// capacity to renegotiate over.
FaultPlan RandomPlan(uint64_t seed) {
  Rng rng(DeriveSeed(seed, kPlanStream));
  FaultPlan plan;
  plan.seed = seed;
  for (int core = 1; core < kPcpus; ++core) {
    TimeNs cursor = rng.UniformTime(Ms(200), Sec(1));
    while (cursor < kRun - Sec(1)) {
      FaultPlan::PcpuFault f;
      f.pcpu = core;
      f.at = cursor;
      double roll = rng.Uniform(0.0, 1.0);
      if (roll < 0.1) {
        f.kind = FaultPlan::PcpuFault::Kind::kPermanentFailure;
        plan.pcpu_faults.push_back(f);
        break;  // Nothing may follow a permanent failure on this core.
      }
      TimeNs len = rng.UniformTime(Ms(300), Sec(2));
      f.until = std::min(cursor + len, kRun + Sec(1));
      if (roll < 0.5) {
        f.kind = FaultPlan::PcpuFault::Kind::kTransientOffline;
      } else {
        f.kind = FaultPlan::PcpuFault::Kind::kDegrade;
        f.speed = rng.Uniform(0.3, 0.9);
      }
      plan.pcpu_faults.push_back(f);
      cursor = f.until + rng.UniformTime(Ms(200), Sec(1));
    }
  }
  // One byzantine-VM campaign per seed: all three adversarial kinds share a
  // random window that ends well before the run does, so the trust boundary
  // gets to quarantine *and* rehabilitate under concurrent PCPU faults. VM
  // index 2 is the dedicated adversary added by SoakOne.
  TimeNs atk_start = rng.UniformTime(Ms(500), Sec(2));
  TimeNs atk_end = std::min<TimeNs>(atk_start + rng.UniformTime(Sec(1), Sec(2)),
                                    kRun - Sec(1));
  for (auto kind : {FaultPlan::AdversarialGuest::Kind::kDeadlineLies,
                    FaultPlan::AdversarialGuest::Kind::kHypercallStorm,
                    FaultPlan::AdversarialGuest::Kind::kBandwidthThrash}) {
    FaultPlan::AdversarialGuest a;
    a.kind = kind;
    a.vm_index = 2;
    a.start = atk_start;
    a.end = atk_end;
    a.period = kind == FaultPlan::AdversarialGuest::Kind::kHypercallStorm ? Us(100)
               : kind == FaultPlan::AdversarialGuest::Kind::kDeadlineLies ? Us(200)
                                                                          : Us(500);
    a.thrash_high = Bandwidth::FromDouble(0.15);
    plan.adversarial_guests.push_back(a);
  }
  return plan;
}

struct SoakResult {
  ResilienceCounters rc;
  size_t planned_faults = 0;
  bool svc_quarantined = false;  // Controller tenant quarantined at run end.
  bool ok = false;
  std::string why;
  std::string notes;  // Audit-violation details for a failing seed.
};

SoakResult SoakOne(uint64_t seed) {
  ExperimentConfig cfg = Config(Framework::kRtvirt, kPcpus);
  cfg.seed = seed;
  cfg.dpwrap.pcpu_recovery.enabled = true;
  cfg.dpwrap.overload.enabled = true;
  cfg.dpwrap.guest_trust.enabled = true;
  cfg.audit.enabled = true;
  cfg.machine.evacuation_penalty = Us(150);
  cfg.faults = RandomPlan(seed);
  // The SLO controller steers a service VM through the same storm: its
  // hypercall traffic runs under the full trust boundary while cores fail
  // and the byzantine VM attacks, and a well-behaved controller must come
  // out the other side unquarantined.
  cfg.control.enabled = true;
  cfg.control.decision_period = Ms(20);
  cfg.control.min_samples = 16;
  cfg.control.window.num_slots = 8;
  cfg.control.window.slot_width = Ms(50);

  Experiment exp(cfg);
  GuestConfig gcfg;
  gcfg.overload.enabled = true;
  GuestOs* hi = exp.AddGuest("hi", 6, gcfg);
  GuestOs* lo = exp.AddGuest("lo", 4, gcfg);
  // VM 2: the byzantine guest the adversarial plan entries target. A small
  // legitimate RTA keeps a host-read deadline slot alive for the lies to
  // land in; the last VCPU stays channel-unmanaged for the thrash campaign.
  GuestOs* adv = exp.AddGuest("adv", 2);
  PeriodicRta cover(adv, "cover", RtaParams{Ms(1), Ms(10)});
  cover.Start(0, kRun);
  // VM 3: the controller-steered service tenant. A seeded open-loop flash
  // crowd forces the controller to actually adjust mid-storm.
  GuestOs* svc = exp.AddGuest("svc", 1);
  Rng svc_rng(DeriveSeed(seed, kSvcStream));
  MemcachedConfig mc;
  mc.qps = 1500.0;
  mc.slo = Ms(1);
  mc.slice = Us(58);
  mc.open_loop.enabled = true;
  mc.open_loop.diurnal_amplitude = 0.2;
  TimeNs flash_at = svc_rng.UniformTime(Ms(500), kRun - Sec(2));
  mc.open_loop.phases.push_back({flash_at, flash_at + Sec(1), 3.0});
  MemcachedServer svc_server(svc, "svc-mc", mc,
                             Rng(DeriveSeed(seed, kSvcStream) + 1));
  svc_server.Start(0, kRun);
  SloController::TenantOptions svc_opts;
  svc_opts.slo = Ms(1);
  svc_opts.max_slice = Us(240);
  exp.controller()->Watch(svc, svc_server.task(), exp.ChannelOf(svc), svc_opts);

  ChurnConfig hi_cfg;
  hi_cfg.experiment_len = kRun;
  hi_cfg.criticality = Criticality::kHigh;
  hi_cfg.profile = RtaParams{Us(2250), Ms(10)};
  hi_cfg.admission_retry = Ms(50);
  ChurnConfig lo_cfg = hi_cfg;
  lo_cfg.criticality = Criticality::kLow;
  lo_cfg.profile = RtaParams{Us(4500), Ms(10)};
  lo_cfg.elastic_min_fraction = 0.5;
  DeadlineMonitor hi_mon, lo_mon;
  ChurnDriver hi_churn(hi, hi_cfg, Rng(DeriveSeed(seed, kHiChurnStream)), &hi_mon);
  ChurnDriver lo_churn(lo, lo_cfg, Rng(DeriveSeed(seed, kLoChurnStream)), &lo_mon);
  hi_churn.Start();
  lo_churn.Start();
  exp.Run(kRun);

  SoakResult r;
  r.rc = exp.resilience();
  r.planned_faults = cfg.faults.pcpu_faults.size();
  r.svc_quarantined = exp.dpwrap()->Quarantined(svc->vm());
  if (exp.auditor() == nullptr || r.rc.audit_checks == 0) {
    r.why = "auditor never ran";
  } else if (r.rc.isolation_violations > 0 || r.rc.audit_violations > 0) {
    r.why = r.rc.isolation_violations > 0 ? "isolation invariant violated"
                                          : "audit violations";
    std::ostringstream notes;
    for (const AuditViolation& v : exp.auditor()->violations()) {
      notes << "  seed " << seed << " violation @" << v.time << " ns [" << v.invariant
            << "] " << v.detail << "\n";
    }
    r.notes = notes.str();
  } else if (r.planned_faults > 0 &&
             r.rc.pcpu_offline_events + r.rc.pcpu_degrade_events == 0) {
    r.why = "planned faults never fired";
  } else if (!cfg.faults.adversarial_guests.empty() &&
             r.rc.adversarial_deadline_lies + r.rc.adversarial_storm_calls +
                     r.rc.adversarial_thrash_calls == 0) {
    r.why = "adversarial campaign never fired";
  } else if (!cfg.faults.adversarial_guests.empty() &&
             (r.rc.quarantines == 0 || r.rc.quarantine_releases == 0)) {
    r.why = "byzantine VM not quarantined and rehabilitated";
  } else if (r.rc.control_decisions == 0) {
    r.why = "SLO controller never decided";
  } else if (r.svc_quarantined) {
    r.why = "controller tenant quarantined";
  } else {
    r.ok = true;
  }
  return r;
}

// Shard report wire format: line 1 = tab-separated table cells, remaining
// lines (if any) = verbatim per-seed notes printed after the table.
std::string RowFor(uint64_t seed, const SoakResult& r) {
  std::ostringstream os;
  os << seed << '\t' << r.planned_faults << '\t' << r.rc.pcpu_evacuations << '\t'
     << r.rc.capacity_replans << '\t' << r.rc.sheds << '\t' << r.rc.resumes << '\t'
     << r.rc.deadline_lie_rejections << '\t' << r.rc.hypercall_rate_rejections << '\t'
     << r.rc.quarantines << '/' << r.rc.quarantine_releases << '\t'
     << r.rc.control_inc_adjustments << '/' << r.rc.control_dec_adjustments << '\t'
     << r.rc.audit_violations << '/' << r.rc.audit_checks << '\t'
     << (r.ok ? "ok" : r.why);
  if (!r.notes.empty()) {
    os << '\n' << r.notes;
  }
  return os.str();
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> cells;
  size_t begin = 0;
  while (true) {
    size_t tab = line.find('\t', begin);
    cells.push_back(line.substr(begin, tab == std::string::npos ? tab : tab - begin));
    if (tab == std::string::npos) {
      break;
    }
    begin = tab + 1;
  }
  return cells;
}

struct Options {
  int seeds = 5;
  sweep::SweepConfig sweep;
};

int64_t FlagValue(const std::string& arg, const std::string& name) {
  return std::atoll(arg.substr(name.size()).c_str());
}

Options Parse(int argc, char** argv) {
  Options opt;
  opt.sweep.jobs = 1;
  opt.sweep.max_attempts = 2;
  opt.sweep.backoff_initial_ms = 50;
  opt.sweep.backoff_cap_ms = 2000;
  if (const char* env = std::getenv("RTVIRT_SOAK_SEEDS")) {
    opt.seeds = std::atoi(env);
  }
  if (const char* env = std::getenv("RTVIRT_SOAK_JOBS")) {
    opt.sweep.jobs = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0) {
      opt.seeds = static_cast<int>(FlagValue(arg, "--seeds="));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      opt.sweep.jobs = static_cast<int>(FlagValue(arg, "--jobs="));
    } else if (arg.rfind("--watchdog-ms=", 0) == 0) {
      opt.sweep.shard_deadline_ms = FlagValue(arg, "--watchdog-ms=");
    } else if (arg.rfind("--attempts=", 0) == 0) {
      opt.sweep.max_attempts = static_cast<int>(FlagValue(arg, "--attempts="));
    } else if (arg == "--isolate=process") {
      opt.sweep.isolation = sweep::Isolation::kProcess;
    } else if (arg == "--isolate=thread") {
      opt.sweep.isolation = sweep::Isolation::kThread;
    } else {
      std::cerr << "fault_soak: unknown flag " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

int Soak(const Options& opt) {
  Header("Randomized PCPU-fault soak: recovery + audit across " +
         std::to_string(opt.seeds) + " seeds");
  // Execution diagnostics go to stderr: the stdout report stays
  // byte-identical across jobs counts and isolation modes.
  std::cerr << "fault_soak: jobs=" << opt.sweep.jobs << " isolate="
            << (opt.sweep.isolation == sweep::Isolation::kProcess ? "process" : "thread")
            << " attempts=" << opt.sweep.max_attempts
            << " watchdog_ms=" << opt.sweep.shard_deadline_ms << "\n";

  sweep::SweepReport rep =
      sweep::RunSweep(opt.sweep, opt.seeds, [](const sweep::ShardContext& ctx) {
        sweep::ShardResult out;
        out.report = RowFor(static_cast<uint64_t>(ctx.shard) + 1,
                            SoakOne(static_cast<uint64_t>(ctx.shard) + 1));
        return out;
      });

  TablePrinter table({"seed", "faults", "evac", "replans", "sheds", "resumes",
                      "lie_rej", "rate_rej", "quar", "ctl", "audit", "result"});
  std::string notes;
  int verdict_failures = 0;
  for (int s = 0; s < opt.seeds; ++s) {
    const sweep::ShardOutcome& o = rep.shards[static_cast<size_t>(s)];
    if (o.outcome == sweep::Outcome::kClean) {
      std::string first = o.report.substr(0, o.report.find('\n'));
      if (first.size() < o.report.size()) {
        notes += o.report.substr(first.size() + 1);
      }
      std::vector<std::string> cells = SplitTabs(first);
      if (cells.back() != "ok") {
        ++verdict_failures;
      }
      table.AddRow(cells);
    } else {
      // The shard never produced a row: its outcome line below says why.
      table.AddRow({std::to_string(s + 1), "-", "-", "-", "-", "-", "-", "-", "-", "-",
                    "-", std::string(sweep::OutcomeName(o.outcome))});
    }
  }
  table.Print(std::cout);
  if (!notes.empty()) {
    std::cout << notes;
  }

  // Per-shard execution outcome lines: CI logs show which seed died and why
  // (a seed that aborts mid-run no longer takes the soak's table with it).
  std::cout << "shard outcomes:\n";
  for (int s = 0; s < opt.seeds; ++s) {
    const sweep::ShardOutcome& o = rep.shards[static_cast<size_t>(s)];
    std::cout << "  seed " << (s + 1) << ": " << sweep::OutcomeName(o.outcome);
    if (o.outcome == sweep::Outcome::kClean) {
      if (o.recovered) {
        std::cout << " (recovered on attempt " << o.attempts
                  << "; last failure: " << o.reason << ")";
      }
    } else {
      std::cout << " (attempts=" << o.attempts << ": " << o.reason << ")";
    }
    std::cout << "\n";
  }
  std::cout << "sweep: clean=" << rep.clean << " recovered=" << rep.recovered
            << " unresolved=" << rep.unresolved << " retries=" << rep.retries
            << " timeouts=" << rep.timeouts << " check_failures=" << rep.check_failures
            << " crashes=" << rep.crashes << "\n";

  int failures = verdict_failures + rep.unresolved;
  std::cout << "check: " << (opt.seeds - failures) << "/" << opt.seeds
            << " seeds clean => " << (failures == 0 ? "PASS" : "FAIL") << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace rtvirt::bench

int main(int argc, char** argv) {
  return rtvirt::bench::Soak(rtvirt::bench::Parse(argc, argv));
}

// Randomized multi-seed PCPU-fault soak (robustness PR, CI weekly job).
//
// Each seed derives a fresh random fault plan — transient core outages,
// frequency throttles, the occasional permanent failure, and an adversarial-
// guest campaign (deadline lies, a hypercall storm, and bandwidth thrash from
// a dedicated byzantine VM), laid out non-overlapping per core so
// FaultPlan::Validate accepts it — and drives a churned two-tier workload
// through it with the full recovery stack enabled (pcpu_recovery + overload
// renegotiation + guest_trust boundary + invariant auditor). The process
// exits nonzero if any seed ends with audit violations, an isolation-
// invariant violation, an unarmed auditor, or a fault/attack path that never
// fired; RTVIRT_CHECK failures abort outright. Under ASan/UBSan (the CI
// configuration) this doubles as a memory/UB sweep over the whole
// evacuation/re-plan/renegotiation/quarantine machinery.
//
// RTVIRT_SOAK_SEEDS overrides the seed count (default 5 keeps a local run
// in seconds; the weekly job raises it).

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/resilience.h"
#include "src/workloads/churn.h"

namespace rtvirt::bench {
namespace {

constexpr TimeNs kRun = Sec(6);
constexpr int kPcpus = 4;

// A random but always-valid plan: per core, an ordered walk of the run
// leaves every generated window disjoint from its predecessors by
// construction. Core 0 is never faulted so the machine always retains
// capacity to renegotiate over.
FaultPlan RandomPlan(uint64_t seed) {
  Rng rng(seed * 7919 + 17);
  FaultPlan plan;
  plan.seed = seed;
  for (int core = 1; core < kPcpus; ++core) {
    TimeNs cursor = rng.UniformTime(Ms(200), Sec(1));
    while (cursor < kRun - Sec(1)) {
      FaultPlan::PcpuFault f;
      f.pcpu = core;
      f.at = cursor;
      double roll = rng.Uniform(0.0, 1.0);
      if (roll < 0.1) {
        f.kind = FaultPlan::PcpuFault::Kind::kPermanentFailure;
        plan.pcpu_faults.push_back(f);
        break;  // Nothing may follow a permanent failure on this core.
      }
      TimeNs len = rng.UniformTime(Ms(300), Sec(2));
      f.until = std::min(cursor + len, kRun + Sec(1));
      if (roll < 0.5) {
        f.kind = FaultPlan::PcpuFault::Kind::kTransientOffline;
      } else {
        f.kind = FaultPlan::PcpuFault::Kind::kDegrade;
        f.speed = rng.Uniform(0.3, 0.9);
      }
      plan.pcpu_faults.push_back(f);
      cursor = f.until + rng.UniformTime(Ms(200), Sec(1));
    }
  }
  // One byzantine-VM campaign per seed: all three adversarial kinds share a
  // random window that ends well before the run does, so the trust boundary
  // gets to quarantine *and* rehabilitate under concurrent PCPU faults. VM
  // index 2 is the dedicated adversary added by SoakOne.
  TimeNs atk_start = rng.UniformTime(Ms(500), Sec(2));
  TimeNs atk_end = std::min<TimeNs>(atk_start + rng.UniformTime(Sec(1), Sec(2)),
                                    kRun - Sec(1));
  for (auto kind : {FaultPlan::AdversarialGuest::Kind::kDeadlineLies,
                    FaultPlan::AdversarialGuest::Kind::kHypercallStorm,
                    FaultPlan::AdversarialGuest::Kind::kBandwidthThrash}) {
    FaultPlan::AdversarialGuest a;
    a.kind = kind;
    a.vm_index = 2;
    a.start = atk_start;
    a.end = atk_end;
    a.period = kind == FaultPlan::AdversarialGuest::Kind::kHypercallStorm ? Us(100)
               : kind == FaultPlan::AdversarialGuest::Kind::kDeadlineLies ? Us(200)
                                                                          : Us(500);
    a.thrash_high = Bandwidth::FromDouble(0.15);
    plan.adversarial_guests.push_back(a);
  }
  return plan;
}

struct SoakResult {
  ResilienceCounters rc;
  size_t planned_faults = 0;
  bool ok = false;
  std::string why;
};

SoakResult SoakOne(uint64_t seed) {
  ExperimentConfig cfg = Config(Framework::kRtvirt, kPcpus);
  cfg.seed = seed;
  cfg.dpwrap.pcpu_recovery.enabled = true;
  cfg.dpwrap.overload.enabled = true;
  cfg.dpwrap.guest_trust.enabled = true;
  cfg.audit.enabled = true;
  cfg.machine.evacuation_penalty = Us(150);
  cfg.faults = RandomPlan(seed);

  Experiment exp(cfg);
  GuestConfig gcfg;
  gcfg.overload.enabled = true;
  GuestOs* hi = exp.AddGuest("hi", 6, gcfg);
  GuestOs* lo = exp.AddGuest("lo", 4, gcfg);
  // VM 2: the byzantine guest the adversarial plan entries target. A small
  // legitimate RTA keeps a host-read deadline slot alive for the lies to
  // land in; the last VCPU stays channel-unmanaged for the thrash campaign.
  GuestOs* adv = exp.AddGuest("adv", 2);
  PeriodicRta cover(adv, "cover", RtaParams{Ms(1), Ms(10)});
  cover.Start(0, kRun);

  ChurnConfig hi_cfg;
  hi_cfg.experiment_len = kRun;
  hi_cfg.criticality = Criticality::kHigh;
  hi_cfg.profile = RtaParams{Us(2250), Ms(10)};
  hi_cfg.admission_retry = Ms(50);
  ChurnConfig lo_cfg = hi_cfg;
  lo_cfg.criticality = Criticality::kLow;
  lo_cfg.profile = RtaParams{Us(4500), Ms(10)};
  lo_cfg.elastic_min_fraction = 0.5;
  DeadlineMonitor hi_mon, lo_mon;
  ChurnDriver hi_churn(hi, hi_cfg, Rng(seed * 31 + 5), &hi_mon);
  ChurnDriver lo_churn(lo, lo_cfg, Rng(seed * 31 + 6), &lo_mon);
  hi_churn.Start();
  lo_churn.Start();
  exp.Run(kRun);

  SoakResult r;
  r.rc = exp.resilience();
  r.planned_faults = cfg.faults.pcpu_faults.size();
  if (exp.auditor() == nullptr || r.rc.audit_checks == 0) {
    r.why = "auditor never ran";
  } else if (r.rc.isolation_violations > 0 || r.rc.audit_violations > 0) {
    r.why = r.rc.isolation_violations > 0 ? "isolation invariant violated"
                                          : "audit violations";
    for (const AuditViolation& v : exp.auditor()->violations()) {
      std::cout << "  violation @" << v.time << " ns [" << v.invariant << "] " << v.detail
                << "\n";
    }
  } else if (r.planned_faults > 0 &&
             r.rc.pcpu_offline_events + r.rc.pcpu_degrade_events == 0) {
    r.why = "planned faults never fired";
  } else if (!cfg.faults.adversarial_guests.empty() &&
             r.rc.adversarial_deadline_lies + r.rc.adversarial_storm_calls +
                     r.rc.adversarial_thrash_calls == 0) {
    r.why = "adversarial campaign never fired";
  } else if (!cfg.faults.adversarial_guests.empty() &&
             (r.rc.quarantines == 0 || r.rc.quarantine_releases == 0)) {
    r.why = "byzantine VM not quarantined and rehabilitated";
  } else {
    r.ok = true;
  }
  return r;
}

int Soak() {
  int seeds = 5;
  if (const char* env = std::getenv("RTVIRT_SOAK_SEEDS")) {
    seeds = std::atoi(env);
  }
  Header("Randomized PCPU-fault soak: recovery + audit across " +
         std::to_string(seeds) + " seeds");
  TablePrinter table({"seed", "faults", "evac", "replans", "sheds", "resumes",
                      "lie_rej", "rate_rej", "quar", "audit", "result"});
  int failures = 0;
  for (int s = 1; s <= seeds; ++s) {
    SoakResult r = SoakOne(static_cast<uint64_t>(s));
    if (!r.ok) {
      ++failures;
    }
    table.AddRow({std::to_string(s), std::to_string(r.planned_faults),
                  std::to_string(r.rc.pcpu_evacuations),
                  std::to_string(r.rc.capacity_replans), std::to_string(r.rc.sheds),
                  std::to_string(r.rc.resumes),
                  std::to_string(r.rc.deadline_lie_rejections),
                  std::to_string(r.rc.hypercall_rate_rejections),
                  std::to_string(r.rc.quarantines) + "/" +
                      std::to_string(r.rc.quarantine_releases),
                  std::to_string(r.rc.audit_violations) + "/" +
                      std::to_string(r.rc.audit_checks),
                  r.ok ? "ok" : r.why});
  }
  table.Print(std::cout);
  std::cout << "check: " << (seeds - failures) << "/" << seeds
            << " seeds clean => " << (failures == 0 ? "PASS" : "FAIL") << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace rtvirt::bench

int main() { return rtvirt::bench::Soak(); }

// Shared helpers for the table/figure benches.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/carts.h"
#include "src/analysis/dmpr.h"
#include "src/metrics/deadline_monitor.h"
#include "src/metrics/report.h"
#include "src/runner/experiment.h"
#include "src/workloads/groups.h"
#include "src/workloads/memcached.h"
#include "src/workloads/periodic.h"
#include "src/workloads/sporadic.h"
#include "src/workloads/vlc.h"

namespace rtvirt::bench {

inline ExperimentConfig Config(Framework fw, int pcpus = 15) {
  ExperimentConfig cfg;
  cfg.framework = fw;
  cfg.machine.num_pcpus = pcpus;
  return cfg;
}

// CARTS interface (1 ms grid, as the published Table 2 values use) for one
// VCPU's task set. An infeasible task set is a bench configuration bug, so
// it aborts — but only after naming every task so the offending set can be
// read straight off the failure output.
inline PeriodicResource CartsInterface(const std::vector<RtaParams>& tasks,
                                       TimeNs granularity = Ms(1)) {
  auto iface = MinimalInterface(tasks, CartsOptions{granularity, 0, 0});
  if (!iface.has_value()) {
    std::cerr << "CARTS: no feasible interface at granularity " << granularity
              << " ns for task set (" << tasks.size() << " tasks):\n";
    for (size_t i = 0; i < tasks.size(); ++i) {
      const RtaParams& t = tasks[i];
      std::cerr << "  task[" << i << "]: budget=" << t.slice << " ns period=" << t.period
                << " ns util=" << TablePrinter::Fmt(t.bandwidth().ToDouble(), 4)
                << (t.sporadic ? " sporadic" : " periodic") << "\n";
    }
    std::abort();
  }
  return *iface;
}

// Creates a single-RTA VM under RT-Xen: CARTS-derived server, capacity set
// to the interface bandwidth, pEDF guest.
inline GuestOs* AddRtXenVm(Experiment& exp, const std::string& name, const RtaParams& rta,
                           PeriodicResource* iface_out = nullptr) {
  GuestOs* g = exp.AddGuest(name, 1);
  PeriodicResource iface = CartsInterface({rta});
  exp.SetVcpuServer(g->vm()->vcpu(0), ServerParams{iface.budget, iface.period});
  g->SetVcpuCapacity(0, iface.bandwidth());
  if (iface_out != nullptr) {
    *iface_out = iface;
  }
  return g;
}

// Installs an RTVirt channel with a small absolute slack on `guest` — the
// microsecond-period analogue of the paper's 500 us slack (which targets
// millisecond periods). No-op for non-RTVirt frameworks.
inline void SetMicroSlack(Experiment& exp, GuestOs* guest, TimeNs slack = Us(6)) {
  if (exp.config().framework == Framework::kRtvirt) {
    GuestChannelOptions opts = exp.config().channel;
    opts.budget_slack = slack;
    guest->SetCrossLayer(std::make_unique<RtvirtGuestChannel>(&exp.machine(), opts));
  }
}

inline std::string Cpus(Bandwidth bw) { return TablePrinter::Fmt(bw.ToDouble(), 3); }

inline std::string Pct(double fraction) { return TablePrinter::Pct(fraction, 3); }

inline void Header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace rtvirt::bench

#endif  // BENCH_BENCH_UTIL_H_

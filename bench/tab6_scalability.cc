// Tables 5 & 6 (section 4.5): scalability and overhead with 100 concurrent
// RTAs, in two scenarios:
//   * Multi-RTA VMs: 10 VMs, each hosting 10 RTAs of one Table 5 group,
//     with the minimum number of VCPUs (via guest CPU hotplug);
//   * Single-RTA VMs: 100 single-VCPU VMs, 10 per group.
// For each framework it reports time spent in schedule() and context
// switches and the total overhead as a fraction of machine time, plus the
// deadline misses (paper: RTVirt 0% multi, 0.007% single, overhead 0.10% /
// 0.93%; RT-Xen fits only 80 / 93 RTAs).

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/perf/perf_recorder.h"
#include "src/perf/perf_report.h"

namespace rtvirt {
namespace {

constexpr TimeNs kDuration = Sec(30);

struct Outcome {
  int rtas = 0;
  int vms = 0;
  int vcpus = 0;
  OverheadStats overhead;
  uint64_t misses = 0;
  uint64_t jobs = 0;
  TimeNs wall = kDuration;
};

// Packs `count` identical RTAs onto VCPUs and returns tasks per VCPU.
std::vector<int> PartitionIdentical(const RtaParams& rta, int count) {
  double bw = rta.bandwidth().ToDouble();
  int per_vcpu = static_cast<int>(1.0 / bw);
  std::vector<int> bins;
  int left = count;
  while (left > 0) {
    int k = std::min(per_vcpu, left);
    bins.push_back(k);
    left -= k;
  }
  return bins;
}

ExperimentConfig ScalabilityConfig(Framework fw) {
  ExperimentConfig cfg = bench::Config(fw);
  if (fw == Framework::kRtXen) {
    // The RT-Xen the paper evaluated was quantum-driven (1 ms): every PCPU
    // re-enters schedule() each quantum, which dominates its Table 6
    // schedule() time (section 4.5's closing note).
    cfg.server_edf.quantum = Ms(1);
  }
  return cfg;
}

Outcome RunMultiRta(Framework fw) {
  Experiment exp(ScalabilityConfig(fw));
  Outcome out;
  DeadlineMonitor mon;
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
  std::vector<PeriodicResource> interfaces;
  double claimed = 0;

  for (size_t gi = 0; gi < kTable5Groups.size(); ++gi) {
    const RtaParams& params = kTable5Groups[gi];
    if (fw == Framework::kRtXen) {
      // Stop once DMPR would claim more than the host's 15 PCPUs (the paper
      // fits only the first 8 groups).
      std::vector<int> bins = PartitionIdentical(params, 10);
      double group_claim = 0;
      std::vector<PeriodicResource> group_ifaces;
      for (int k : bins) {
        std::vector<RtaParams> taskset(k, params);
        group_ifaces.push_back(bench::CartsInterface(taskset));
        group_claim += group_ifaces.back().bandwidth().ToDouble();
      }
      std::vector<PeriodicResource> all = interfaces;
      all.insert(all.end(), group_ifaces.begin(), group_ifaces.end());
      if (DmprPack(all).claimed_cpus > 15) {
        break;
      }
      interfaces = std::move(all);
      claimed += group_claim;
      GuestOs* g = exp.AddGuest("vm" + std::to_string(gi), static_cast<int>(bins.size()));
      int task_index = 0;
      for (size_t b = 0; b < bins.size(); ++b) {
        exp.SetVcpuServer(g->vm()->vcpu(static_cast<int>(b)),
                          ServerParams{group_ifaces[b].budget, group_ifaces[b].period});
        // Cap at exactly the bin's content so first-fit reproduces the plan.
        g->SetVcpuCapacity(static_cast<int>(b),
                           Bandwidth::FromPpb(params.bandwidth().ppb() * bins[b]));
      }
      for (int t = 0; t < 10; ++t) {
        auto rta = std::make_unique<PeriodicRta>(
            g, "g" + std::to_string(gi) + ".rta" + std::to_string(task_index++), params);
        rta->task()->set_observer(&mon);
        rta->Start(0, kDuration);
        rtas.push_back(std::move(rta));
      }
      out.vcpus += static_cast<int>(bins.size());
      ++out.vms;
      out.rtas += 10;
    } else {
      GuestConfig gcfg;
      gcfg.allow_hotplug = true;  // Minimum number of VCPUs, added online.
      GuestOs* g = exp.AddGuest("vm" + std::to_string(gi), 1, gcfg);
      for (int t = 0; t < 10; ++t) {
        auto rta = std::make_unique<PeriodicRta>(
            g, "g" + std::to_string(gi) + ".rta" + std::to_string(t), params);
        rta->task()->set_observer(&mon);
        rta->Start(0, kDuration);
        rtas.push_back(std::move(rta));
      }
      out.vcpus += g->num_vcpus();
      ++out.vms;
      out.rtas += 10;
    }
  }
  exp.Run(kDuration + Ms(500));
  out.overhead = exp.machine().overhead();
  out.misses = mon.total_misses();
  out.jobs = mon.total_completed();
  return out;
}

Outcome RunSingleRta(Framework fw) {
  Experiment exp(ScalabilityConfig(fw));
  Outcome out;
  DeadlineMonitor mon;
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
  std::vector<PeriodicResource> interfaces;

  for (int copy = 0; copy < 10; ++copy) {
    for (size_t gi = 0; gi < kTable5Groups.size(); ++gi) {
      const RtaParams& params = kTable5Groups[gi];
      std::string name = "vm" + std::to_string(copy) + "." + std::to_string(gi);
      if (fw == Framework::kRtXen) {
        PeriodicResource iface = bench::CartsInterface({params});
        std::vector<PeriodicResource> all = interfaces;
        all.push_back(iface);
        if (DmprPack(all).claimed_cpus > 15) {
          continue;  // The paper fits 93 of the 100 RTAs.
        }
        interfaces = std::move(all);
        GuestOs* g = exp.AddGuest(name, 1);
        exp.SetVcpuServer(g->vm()->vcpu(0), ServerParams{iface.budget, iface.period});
        g->SetVcpuCapacity(0, iface.bandwidth());
        auto rta = std::make_unique<PeriodicRta>(g, name + ".rta", params);
        rta->task()->set_observer(&mon);
        rta->Start(0, kDuration);
        rtas.push_back(std::move(rta));
      } else {
        GuestOs* g = exp.AddGuest(name, 1);
        auto rta = std::make_unique<PeriodicRta>(g, name + ".rta", params);
        rta->task()->set_observer(&mon);
        rta->Start(0, kDuration);
        rtas.push_back(std::move(rta));
      }
      ++out.vms;
      ++out.vcpus;
      ++out.rtas;
    }
  }
  exp.Run(kDuration + Ms(500));
  out.overhead = exp.machine().overhead();
  out.misses = mon.total_misses();
  out.jobs = mon.total_completed();
  return out;
}

void Report(const char* scenario, Framework fw, const Outcome& out) {
  static TablePrinter* table = nullptr;
  (void)table;
  std::cout << "  " << scenario << " / " << FrameworkName(fw) << ": " << out.rtas << " RTAs on "
            << out.vms << " VMs (" << out.vcpus << " VCPUs)\n";
  TablePrinter t({"schedule() time", "ctx-switch time", "migrations", "overhead %",
                  "misses/jobs"});
  t.AddRow({TablePrinter::Fmt(ToMs(out.overhead.schedule_time), 1) + " ms",
            TablePrinter::Fmt(ToMs(out.overhead.context_switch_time +
                                   out.overhead.migration_time), 1) + " ms",
            std::to_string(out.overhead.migrations),
            TablePrinter::Pct(out.overhead.Fraction(out.wall, 15), 3),
            std::to_string(out.misses) + "/" + std::to_string(out.jobs)});
  t.Print(std::cout);
}

}  // namespace
}  // namespace rtvirt

int main(int argc, char** argv) {
  using namespace rtvirt;
  // --perf_json=PATH additionally emits the four scenario runs as a
  // BENCH_*.json perf report (same schema as bench/perf_suite); the table
  // output on stdout is byte-identical with or without the flag.
  std::string perf_json;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--perf_json=", 0) == 0) {
      perf_json = arg.substr(12);
    } else {
      std::cerr << "usage: tab6_scalability [--perf_json=PATH]\n";
      return 2;
    }
  }
  perf::PerfRecorder rec;
  auto timed = [&rec](const char* phase, auto&& run) {
    rec.Begin(phase);
    Outcome out = run();
    rec.End(out.jobs);
    return out;
  };
  bench::Header("Table 6: schedule()/context-switch overhead at 100 concurrent RTAs (30 s)");
  std::cout << "Table 5 groups (slice,period in ms): ";
  for (const RtaParams& p : kTable5Groups) {
    std::cout << "(" << p.slice / kNsPerMs << "," << p.period / kNsPerMs << ") ";
  }
  std::cout << "\n\n(a) Multi-RTA VMs scenario\n";
  Report("Multi-RTA", Framework::kRtXen,
         timed("multi.rtxen", [] { return RunMultiRta(Framework::kRtXen); }));
  Report("Multi-RTA", Framework::kRtvirt,
         timed("multi.rtvirt", [] { return RunMultiRta(Framework::kRtvirt); }));
  std::cout << "\n(b) Single-RTA VMs scenario\n";
  Report("Single-RTA", Framework::kRtXen,
         timed("single.rtxen", [] { return RunSingleRta(Framework::kRtXen); }));
  Report("Single-RTA", Framework::kRtvirt,
         timed("single.rtvirt", [] { return RunSingleRta(Framework::kRtvirt); }));
  std::cout << "\nPaper: RTVirt overhead 0.10% (multi) / 0.93% (single), below RT-Xen's\n"
               "0.39% / 2.16%; RT-Xen fits only 80 / 93 of the 100 RTAs.\n";
  if (!perf_json.empty()) {
    perf::PerfReport report;
    report.suite = "tab6_scalability";
    for (const perf::PhaseResult& p : rec.phases()) {
      report.Add("tab6." + p.name + ".wall_ms",
                 static_cast<double>(p.wall_ns) / 1e6, "ms", false, 0.5);
      report.Add("tab6." + p.name + ".ns_per_job", p.NsPerOp(), "ns", false, 0.5);
      report.Add("tab6." + p.name + ".allocs",
                 static_cast<double>(p.allocs), "allocs", false, 0.5);
    }
    report.Add("tab6.peak_rss_kb", static_cast<double>(perf::PeakRssKb()), "KiB",
               false, 0.5);
    if (!report.WriteFile(perf_json)) {
      return 1;
    }
  }
  return 0;
}

// Figure 3 (with Table 1 as input): total CPU bandwidth requirement for each
// periodic RTA group when scheduled under RT-Xen and RTVirt.
//
// For each group (one RTA per VM, run 100 s):
//   * RTA-Req            — sum of the RTAs' own bandwidth needs;
//   * RT-Xen: Allocated  — sum of the CARTS interface bandwidths;
//   * RT-Xen: Claimed    — CPUs that must be set aside per DMPR packing;
//   * RTVirt             — bandwidth reserved via the cross-layer channel.
// Both frameworks must meet all deadlines (the paper reports zero misses).

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace rtvirt {
namespace {

constexpr TimeNs kDuration = Sec(100);

struct GroupResult {
  Bandwidth rta_req;
  Bandwidth rtxen_alloc;
  int rtxen_claimed = 0;
  Bandwidth rtvirt_reserved;
  uint64_t rtxen_misses = 0;
  uint64_t rtvirt_misses = 0;
  uint64_t rtxen_jobs = 0;
  uint64_t rtvirt_jobs = 0;
};

GroupResult RunGroup(const RtaGroup& group) {
  GroupResult result;
  for (const RtaParams& rta : group.rtas) {
    result.rta_req += rta.bandwidth();
  }

  {  // RT-Xen.
    Experiment exp(bench::Config(Framework::kRtXen));
    DeadlineMonitor mon;
    std::vector<std::unique_ptr<PeriodicRta>> rtas;
    std::vector<PeriodicResource> interfaces;
    for (size_t i = 0; i < group.rtas.size(); ++i) {
      PeriodicResource iface;
      GuestOs* g = bench::AddRtXenVm(exp, std::string(group.name) + ".vm" + std::to_string(i),
                                     group.rtas[i], &iface);
      interfaces.push_back(iface);
      result.rtxen_alloc += iface.bandwidth();
      auto rta = std::make_unique<PeriodicRta>(g, "rta" + std::to_string(i), group.rtas[i]);
      rta->task()->set_observer(&mon);
      rta->Start(0, kDuration);
      rtas.push_back(std::move(rta));
    }
    result.rtxen_claimed = DmprPack(interfaces).claimed_cpus;
    exp.Run(kDuration + Ms(300));
    result.rtxen_misses = mon.total_misses();
    result.rtxen_jobs = mon.total_completed();
  }

  {  // RTVirt.
    Experiment exp(bench::Config(Framework::kRtvirt));
    DeadlineMonitor mon;
    std::vector<std::unique_ptr<PeriodicRta>> rtas;
    for (size_t i = 0; i < group.rtas.size(); ++i) {
      GuestOs* g = exp.AddGuest(std::string(group.name) + ".vm" + std::to_string(i), 1);
      auto rta = std::make_unique<PeriodicRta>(g, "rta" + std::to_string(i), group.rtas[i]);
      rta->task()->set_observer(&mon);
      rta->Start(0, kDuration);
      rtas.push_back(std::move(rta));
    }
    exp.Run(Sec(1));
    result.rtvirt_reserved = exp.dpwrap()->total_reserved();
    exp.Run(kDuration + Ms(300));
    result.rtvirt_misses = mon.total_misses();
    result.rtvirt_jobs = mon.total_completed();
  }
  return result;
}

}  // namespace
}  // namespace rtvirt

int main() {
  using namespace rtvirt;
  bench::Header("Figure 3: CPU bandwidth requirement per RTA group (Table 1 groups, 100 s)");
  TablePrinter table({"Group", "RTA-Req", "RT-Xen: Claimed", "RT-Xen: Allocated", "RTVirt",
                      "RT-Xen misses", "RTVirt misses"});
  double sum_claimed_minus_req = 0;
  double sum_alloc_excess = 0;
  double sum_rtvirt_excess = 0;
  for (const RtaGroup& group : kTable1Groups) {
    GroupResult r = RunGroup(group);
    table.AddRow({std::string(group.name), bench::Pct(r.rta_req.ToDouble()),
                  TablePrinter::Fmt(r.rtxen_claimed * 100.0, 0) + "%",
                  bench::Pct(r.rtxen_alloc.ToDouble()), bench::Pct(r.rtvirt_reserved.ToDouble()),
                  std::to_string(r.rtxen_misses) + "/" + std::to_string(r.rtxen_jobs),
                  std::to_string(r.rtvirt_misses) + "/" + std::to_string(r.rtvirt_jobs)});
    sum_claimed_minus_req += r.rtxen_claimed - r.rta_req.ToDouble();
    sum_alloc_excess += (r.rtxen_alloc - r.rtvirt_reserved).ToDouble();
    sum_rtvirt_excess += (r.rtvirt_reserved - r.rta_req).ToDouble();
  }
  table.Print(std::cout);
  std::cout << "\nAverages across groups:\n"
            << "  RT-Xen claims " << TablePrinter::Fmt(sum_claimed_minus_req / 6, 3)
            << " more CPUs than the RTAs need (paper: 0.736)\n"
            << "  RTVirt allocates " << TablePrinter::Fmt(sum_alloc_excess / 6, 3)
            << " fewer CPUs than RT-Xen allocates (paper: ~6.8% less)\n"
            << "  RTVirt reserves only " << TablePrinter::Fmt(sum_rtvirt_excess / 6, 3)
            << " CPUs above the RTA requirement (the 500 us/VCPU slack)\n";
  return 0;
}

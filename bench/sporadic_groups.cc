// Section 4.2, sporadic RTAs: the Table 1 groups re-run as sporadic tasks
// triggered by TCP requests from a client host (uniform inter-arrivals in
// [100 ms, 1 s], 100 requests per RTA). Both frameworks must meet every
// deadline; RTVirt does so with ~39% less claimed bandwidth.

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace rtvirt {
namespace {

struct GroupResult {
  uint64_t requests = 0;
  uint64_t completed = 0;
  uint64_t misses = 0;
  Bandwidth bandwidth;  // Allocated (RT-Xen) or reserved (RTVirt).
  int claimed = 0;      // RT-Xen DMPR claim; RTVirt: ceil of reserved.
};

constexpr uint64_t kRequestsPerRta = 100;

GroupResult Run(Framework fw, const RtaGroup& group, uint64_t seed) {
  Experiment exp(bench::Config(fw));
  GroupResult result;
  DeadlineMonitor mon;
  std::vector<std::unique_ptr<SporadicRta>> rtas;
  std::vector<PeriodicResource> interfaces;
  Rng rng(seed);
  for (size_t i = 0; i < group.rtas.size(); ++i) {
    RtaParams p = group.rtas[i];
    p.sporadic = true;
    GuestOs* g;
    if (fw == Framework::kRtXen) {
      PeriodicResource iface;
      g = bench::AddRtXenVm(exp, std::string(group.name) + ".vm" + std::to_string(i),
                            group.rtas[i], &iface);
      interfaces.push_back(iface);
      result.bandwidth += iface.bandwidth();
    } else {
      g = exp.AddGuest(std::string(group.name) + ".vm" + std::to_string(i), 1);
    }
    auto rta = std::make_unique<SporadicRta>(g, "sp" + std::to_string(i), p, rng.Fork());
    rta->task()->set_observer(&mon);
    rta->Start(0, kRequestsPerRta);
    rtas.push_back(std::move(rta));
  }
  // Long enough for 100 requests at <= 1 s inter-arrival each.
  exp.Run(Sec(120));
  if (fw == Framework::kRtvirt) {
    // Sample reservations while the RTAs are registered.
    result.bandwidth = exp.dpwrap()->total_reserved();
    result.claimed = static_cast<int>(result.bandwidth.ToDouble() + 0.999);
  } else {
    result.claimed = DmprPack(interfaces).claimed_cpus;
  }
  for (const auto& rta : rtas) {
    result.requests += rta->requests_sent();
  }
  result.completed = mon.total_completed();
  result.misses = mon.total_misses();
  return result;
}

}  // namespace
}  // namespace rtvirt

int main() {
  using namespace rtvirt;
  bench::Header("Section 4.2: sporadic RTAs (100 TCP-triggered requests per RTA)");
  TablePrinter table({"Group", "Framework", "requests", "completed", "misses", "bandwidth",
                      "claimed CPUs"});
  double xen_claim = 0;
  double rtv_claim = 0;
  for (const RtaGroup& group : kTable1Groups) {
    GroupResult xen = Run(Framework::kRtXen, group, 1000);
    GroupResult rtv = Run(Framework::kRtvirt, group, 1000);
    table.AddRow({std::string(group.name), "RT-Xen", std::to_string(xen.requests),
                  std::to_string(xen.completed), std::to_string(xen.misses),
                  bench::Cpus(xen.bandwidth), std::to_string(xen.claimed)});
    table.AddRow({"", "RTVirt", std::to_string(rtv.requests), std::to_string(rtv.completed),
                  std::to_string(rtv.misses), bench::Cpus(rtv.bandwidth),
                  std::to_string(rtv.claimed)});
    xen_claim += xen.claimed;
    rtv_claim += rtv.bandwidth.ToDouble();
  }
  table.Print(std::cout);
  std::cout << "\nRTVirt claims " << TablePrinter::Pct(1.0 - rtv_claim / xen_claim, 1)
            << " less bandwidth than RT-Xen across the groups (paper: 39.4% less)\n";
  return 0;
}

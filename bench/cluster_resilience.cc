// Cluster federation fail/heal evaluation (host-level fault tolerance PR):
// four 4-core hosts, each initially packing one HIGH-criticality inelastic
// VM (1.5 CPUs) and one LOW elastic VM (1.5 CPUs, compressible to 0.75),
// ride the same deterministic host fault timeline:
//
//   t =  1.0 s   host 3 throttled to 0.65x          (capacity degradation)
//   t =  3.0 s   host 3 back to full speed
//   t =  4.0 s   host 0 crashes, permanently        (evacuate hi0 + lo0)
//   t =  6.5 s   host 2 goes dark                   (races lo0's in-flight
//   t = 11.5 s   host 2 heals                        copy: abort + re-route)
//
// Three responses to the identical hardware timeline:
//
//   hardened - full stack: federation evacuation with retry/backoff and
//              deadline-aware degraded-fit placement, per-host DP-WRAP
//              capacity replans, host pressure + guest compress/shed ladder,
//              invariant auditor armed on every host;
//   noretry  - evacuation fires but the attempt budget is 1 and degraded
//              fit never kicks in: a full cluster means the evacuation is
//              abandoned (unresolved), demonstrating why retry + degrade
//              matter;
//   frozen   - host faults hit the machines, nobody responds.
//
// Acceptance: hardened HIGH misses nothing across the whole timeline with
// zero auditor violations while frozen demonstrably misses; the hardened
// path must exercise evacuation, backoff retries, a migration abort (the
// outage races lo0's copy) and degraded placements.
//
// Soak extension: RTVIRT_CLUSTER_SOAK_SEEDS=N additionally runs N randomized
// host-fault plans on a 3-host cluster, each twice, asserting zero auditor
// violations, no abandoned evacuations, every VM home by the end, and a
// byte-identical report between the paired runs (weekly CI matrix). Seeds
// run as supervised sweep shards: RTVIRT_CLUSTER_SOAK_JOBS=N fans them out,
// and a crashed seed becomes a recorded FAIL line instead of ending the run.

#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/federation.h"
#include "src/common/rng.h"
#include "src/metrics/resilience.h"
#include "src/sweep/sweep.h"

namespace rtvirt::bench {
namespace {

constexpr TimeNs kRunLength = Sec(20);
constexpr int kHosts = 4;
constexpr int kPcpusPerHost = 4;
constexpr int kTasksPerVm = 6;
constexpr TimeNs kRetry = Ms(50);

constexpr TimeNs kDegradeAt = Sec(1);
constexpr TimeNs kDegradeHealAt = Sec(3);
constexpr double kDegradeFactor = 0.65;
// Off the 10 ms period grid, so the host dies mid-grant.
constexpr TimeNs kCrashAt = Sec(4) + Us(1700);
constexpr TimeNs kOutageAt = Sec(6) + Ms(500);
constexpr TimeNs kOutageHealAt = Sec(11) + Ms(500);

enum class Mode { kHardened, kNoRetry, kFrozen };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kHardened:
      return "hardened";
    case Mode::kNoRetry:
      return "noretry";
    case Mode::kFrozen:
      return "frozen";
  }
  return "?";
}

// Whole-VM pre-copy live migration across the cluster interconnect.
MigrationCostModel VmMigration() {
  MigrationCostModel m;
  m.memory_gb = 2.0;
  m.dirty_rate_gbps = 1.0;
  m.link_gbps = 10.0;
  m.downtime_target_gb = 0.05;
  return m;
}

// HIGH tier: 6 x 0.25 CPU inelastic = 1.5 CPUs per VM. LOW tier: same shape
// but elastic to half (floor 0.75 CPUs per VM). Utilizations never pack a
// VCPU anywhere near 1.0, leaving the channel's budget slack room to drain
// the transient backlogs every landing causes.
RtaParams HiProfile() {
  RtaParams p{Us(2500), Ms(10)};
  p.criticality = Criticality::kHigh;
  return p;
}

RtaParams LoProfile() {
  RtaParams p{Us(2500), Ms(10)};
  p.criticality = Criticality::kLow;
  p.min_slice = Us(1250);
  return p;
}

ClusterVmSpec VmSpec(const std::string& name, const RtaParams& profile, bool overload) {
  ClusterVmSpec spec;
  spec.name = name;
  spec.vcpus = kTasksPerVm;
  spec.bandwidth = Bandwidth::FromPpb(profile.bandwidth().ppb() * kTasksPerVm);
  spec.min_bandwidth = Bandwidth::FromPpb(profile.min_bandwidth().ppb() * kTasksPerVm);
  spec.migration = VmMigration();
  spec.guest.overload.enabled = overload;
  return spec;
}

struct TierResult {
  uint64_t ontime = 0;
  uint64_t missed = 0;
};

struct TimelineResult {
  TierResult hi, lo;
  ResilienceCounters rc;
  bool lost_any = false;
};

// Re-creates a landed VM's RTAs; called at admission (generation 0) and
// after every migration landing. Old-generation RTAs die with their crashed
// VM (releases into a crashed VM are dropped), so the shared per-tier
// monitors only ever hear from live instances.
struct Workloads {
  DeadlineMonitor hi_mon, lo_mon;
  std::vector<std::unique_ptr<PeriodicRta>> rtas;

  void Launch(Experiment& exp, GuestOs* guest, const ClusterVmSpec& spec, int generation) {
    bool high = spec.name[0] == 'h';
    RtaParams profile = high ? HiProfile() : LoProfile();
    TimeNs now = exp.sim().Now();
    // Cap per-VCPU packing at 0.5: a VCPU is one serial thread of execution,
    // so a VCPU packed near 1.0 (a) clips the channel's budget slack, losing
    // the headroom that drains transient backlogs into permanent tardiness,
    // and (b) becomes physically unservable the moment a host-level degrade
    // throttles every core below its bandwidth.
    for (int i = 0; i < spec.vcpus; ++i) {
      guest->SetVcpuCapacity(i, Bandwidth::FromDouble(0.5));
    }
    for (int i = 0; i < spec.vcpus; ++i) {
      TimeNs begin = now + Ms(1) * i;  // Staggered off the registration burst.
      if (begin >= kRunLength) {
        continue;
      }
      auto rta = std::make_unique<PeriodicRta>(
          guest, spec.name + ".g" + std::to_string(generation) + "." + std::to_string(i),
          profile);
      rta->set_admission_retry(kRetry);
      // Reserve WCET, run 500 us under it: per-period laxity so a task that
      // fell behind during a fault window catches back up instead of
      // completing every subsequent job exactly one backlog late.
      rta->set_job_work(profile.slice - Us(500));
      (high ? hi_mon : lo_mon).Watch(rta->task());
      rta->Start(begin, kRunLength);
      rtas.push_back(std::move(rta));
    }
  }
};

FaultPlan::HostFault Crash(int host, TimeNs at) {
  FaultPlan::HostFault f;
  f.kind = FaultPlan::HostFault::Kind::kCrash;
  f.host = host;
  f.at = at;
  return f;
}

FaultPlan::HostFault Outage(int host, TimeNs at, TimeNs until) {
  FaultPlan::HostFault f;
  f.kind = FaultPlan::HostFault::Kind::kOutage;
  f.host = host;
  f.at = at;
  f.until = until;
  return f;
}

FaultPlan::HostFault Degrade(int host, TimeNs at, TimeNs until, double factor) {
  FaultPlan::HostFault f;
  f.kind = FaultPlan::HostFault::Kind::kDegrade;
  f.host = host;
  f.at = at;
  f.until = until;
  f.factor = factor;
  return f;
}

TimelineResult RunTimeline(Mode mode) {
  FederationConfig fc;
  fc.num_hosts = kHosts;
  fc.pcpus_per_host = kPcpusPerHost;
  fc.policy = PlacementPolicy::kFirstFit;
  if (mode != Mode::kFrozen) {
    fc.fault_tolerance.enabled = true;
    fc.fault_tolerance.max_attempts = 12;
  }
  if (mode == Mode::kNoRetry) {
    fc.fault_tolerance.max_attempts = 1;
    fc.fault_tolerance.migration_deadline = kTimeNever;  // Degraded fit never arms.
  }

  ExperimentConfig cfg = Config(Framework::kRtvirt, kPcpusPerHost);
  bool hardened = mode == Mode::kHardened;
  if (hardened) {
    cfg.dpwrap.pcpu_recovery.enabled = true;
    cfg.dpwrap.overload.enabled = true;
    cfg.audit.enabled = true;
  }
  cfg.faults.host_faults.push_back(Degrade(3, kDegradeAt, kDegradeHealAt, kDegradeFactor));
  cfg.faults.host_faults.push_back(Crash(0, kCrashAt));
  cfg.faults.host_faults.push_back(Outage(2, kOutageAt, kOutageHealAt));

  Federation fed(fc, cfg);
  Workloads wl;
  fed.SetLauncher([&wl](Experiment& exp, GuestOs* guest, const ClusterVmSpec& spec,
                        int /*host*/, int generation) {
    wl.Launch(exp, guest, spec, generation);
  });
  for (int h = 0; h < kHosts; ++h) {
    fed.AdmitVm(VmSpec("hi" + std::to_string(h), HiProfile(), hardened));
    fed.AdmitVm(VmSpec("lo" + std::to_string(h), LoProfile(), hardened));
  }
  std::vector<std::function<void()>> samplers(kHosts);
  if (std::getenv("RTVIRT_CLUSTER_TRACE") != nullptr && mode == Mode::kHardened) {
    for (int h = 0; h < kHosts; ++h) {
      Experiment& exp = fed.host(h);
      samplers[h] = [&exp, &wl, h, &samplers] {
        std::cout << "t=" << exp.sim().Now() / Ms(1) << "ms host" << h
                  << " cap=" << Cpus(exp.machine().EffectiveCapacity())
                  << " resv=" << exp.dpwrap()->total_reserved().ppb() / 1000000
                  << " pressure=" << exp.dpwrap()->pressure()
                  << " hi=" << wl.hi_mon.total_completed() << "/"
                  << wl.hi_mon.total_misses() << "\n";
        if (exp.sim().Now() < kRunLength) {
          exp.sim().After(Ms(500), samplers[h]);
        }
      };
      exp.sim().After(Ms(500), samplers[h]);
    }
  }
  fed.Run(kRunLength);

  if (std::getenv("RTVIRT_CLUSTER_TRACE") != nullptr) {
    for (const auto& [name, st] : wl.hi_mon.per_task()) {
      if (st.misses > 0) {
        std::cout << ModeName(mode) << " " << name << " completed=" << st.completed
                  << " misses=" << st.misses << " max_tard_ms=" << st.max_tardiness / Ms(1)
                  << "\n";
      }
    }
  }
  TimelineResult r;
  r.hi.ontime = wl.hi_mon.total_completed() - wl.hi_mon.total_misses();
  r.hi.missed = wl.hi_mon.total_misses();
  r.lo.ontime = wl.lo_mon.total_completed() - wl.lo_mon.total_misses();
  r.lo.missed = wl.lo_mon.total_misses();
  r.rc = fed.resilience();
  for (int h = 0; h < kHosts; ++h) {
    if (fed.host(h).auditor() != nullptr) {
      for (const AuditViolation& v : fed.host(h).auditor()->violations()) {
        std::cout << "audit violation host " << h << " @" << v.time << " ns ["
                  << v.invariant << "] " << v.detail << "\n";
      }
    }
    if (fed.host(h).auditor() == nullptr && hardened) {
      std::cout << "missing auditor on host " << h << "\n";
    }
  }
  for (int h = 0; h < kHosts; ++h) {
    Federation::VmStatus hi = fed.vm_status("hi" + std::to_string(h));
    Federation::VmStatus lo = fed.vm_status("lo" + std::to_string(h));
    r.lost_any = r.lost_any || hi.lost || lo.lost;
  }
  if (hardened) {
    fed.PrintReport(std::cout, "cluster_resilience/hardened");
  }
  return r;
}

void ResilienceTimeline(bool& failed) {
  Header("Host crash/outage/heal timeline: federated evacuation + retry/backoff + "
         "graceful degradation vs frozen cluster");
  TablePrinter table({"config", "hi_ontime", "hi_missed", "lo_ontime", "lo_missed", "evac",
                      "retries", "aborts", "degraded", "unresolved", "dark_ms", "audit"});
  TimelineResult hardened, noretry, frozen;
  for (Mode mode : {Mode::kHardened, Mode::kNoRetry, Mode::kFrozen}) {
    TimelineResult r = RunTimeline(mode);
    table.AddRow({ModeName(mode), std::to_string(r.hi.ontime), std::to_string(r.hi.missed),
                  std::to_string(r.lo.ontime), std::to_string(r.lo.missed),
                  std::to_string(r.rc.evacuations), std::to_string(r.rc.migration_retries),
                  std::to_string(r.rc.migration_aborts),
                  std::to_string(r.rc.degraded_placements),
                  std::to_string(r.rc.evacuations_unresolved),
                  std::to_string(r.rc.vm_unavailable_ns / Ms(1)),
                  std::to_string(r.rc.audit_violations) + "/" +
                      std::to_string(r.rc.audit_checks)});
    switch (mode) {
      case Mode::kHardened:
        hardened = r;
        break;
      case Mode::kNoRetry:
        noretry = r;
        break;
      case Mode::kFrozen:
        frozen = r;
        break;
    }
  }
  table.Print(std::cout);

  bool hardened_ok = hardened.hi.missed == 0 && !hardened.lost_any &&
                     hardened.rc.evacuations > 0 && hardened.rc.migration_retries > 0 &&
                     hardened.rc.migration_aborts > 0 &&
                     hardened.rc.degraded_placements > 0 &&
                     hardened.rc.evacuations_unresolved == 0;
  bool audit_ok = hardened.rc.audit_checks > 0 && hardened.rc.audit_violations == 0;
  bool throughput_ok = hardened.hi.ontime > frozen.hi.ontime;
  bool noretry_shows = noretry.rc.evacuations_unresolved > 0;
  bool frozen_shows = frozen.hi.missed > 0;
  std::cout << "check: hardened hi missed=" << hardened.hi.missed
            << " evac=" << hardened.rc.evacuations
            << " retries=" << hardened.rc.migration_retries
            << " aborts=" << hardened.rc.migration_aborts
            << " degraded=" << hardened.rc.degraded_placements << " => "
            << (hardened_ok ? "PASS" : "FAIL")
            << " (every evacuee re-homed, HIGH missed nothing)\n";
  std::cout << "check: audit checks=" << hardened.rc.audit_checks
            << " violations=" << hardened.rc.audit_violations << " => "
            << (audit_ok ? "PASS" : "FAIL")
            << " (every surviving host's plan stayed within effective capacity)\n";
  std::cout << "check: hardened hi ontime=" << hardened.hi.ontime
            << " frozen hi ontime=" << frozen.hi.ontime << " => "
            << (throughput_ok ? "PASS" : "FAIL")
            << " (recovery preserved HIGH throughput the frozen cluster lost)\n";
  std::cout << "check: noretry unresolved=" << noretry.rc.evacuations_unresolved
            << " frozen hi missed=" << frozen.hi.missed << " => "
            << (noretry_shows && frozen_shows ? "PASS" : "FAIL")
            << " (single-attempt evacuation abandons VMs; frozen cluster misses)\n";
  failed = failed || !hardened_ok || !audit_ok || !throughput_ok || !noretry_shows ||
           !frozen_shows;
}

// ---- deterministic multi-seed soak ----

struct SoakOutcome {
  std::string report;  // Alloc-free resilience dump + per-tier miss counts.
  bool audit_clean = false;
  bool all_home = false;
  bool none_lost = false;
};

SoakOutcome RunSoak(uint64_t seed) {
  constexpr int kSoakHosts = 3;
  constexpr TimeNs kSoakLen = Sec(14);
  Rng rng(seed);

  FederationConfig fc;
  fc.num_hosts = kSoakHosts;
  fc.pcpus_per_host = kPcpusPerHost;
  fc.policy = PlacementPolicy::kWorstFit;
  fc.fault_tolerance.enabled = true;

  ExperimentConfig cfg = Config(Framework::kRtvirt, kPcpusPerHost);
  cfg.dpwrap.pcpu_recovery.enabled = true;
  cfg.dpwrap.overload.enabled = true;
  cfg.audit.enabled = true;
  cfg.seed = seed;
  // Host 0 stays clean (a guaranteed survivor); hosts 1..2 each draw one
  // random fault with every window closed by t=7s, leaving half the run for
  // the stragglers to land and re-inflate.
  for (int h = 1; h < kSoakHosts; ++h) {
    TimeNs at = rng.UniformTime(Sec(1), Sec(4));
    TimeNs len = rng.UniformTime(Ms(500), Sec(3));
    if (rng.Bernoulli(0.5)) {
      cfg.faults.host_faults.push_back(Outage(h, at, at + len));
    } else {
      cfg.faults.host_faults.push_back(
          Degrade(h, at, at + len, rng.Uniform(0.6, 0.9)));
    }
  }

  Federation fed(fc, cfg);
  Workloads wl;  // kRunLength > kSoakLen just means RTAs run the whole soak.
  fed.SetLauncher([&wl](Experiment& exp, GuestOs* guest, const ClusterVmSpec& spec,
                        int /*host*/, int generation) {
    wl.Launch(exp, guest, spec, generation);
  });
  RtaParams hi = HiProfile();
  hi.slice = Us(2000);  // 0.2 x 6 = 1.2 CPUs per VM: room for double faults.
  RtaParams lo = LoProfile();
  lo.slice = Us(2000);
  lo.min_slice = Us(1000);
  for (int h = 0; h < kSoakHosts; ++h) {
    fed.AdmitVm(VmSpec("hi" + std::to_string(h), hi, true));
    fed.AdmitVm(VmSpec("lo" + std::to_string(h), lo, true));
  }
  fed.Run(kSoakLen);

  SoakOutcome out;
  ResilienceCounters rc = fed.resilience();
  out.audit_clean = rc.audit_checks > 0 && rc.audit_violations == 0;
  out.none_lost = rc.evacuations_unresolved == 0;
  out.all_home = true;
  for (int h = 0; h < kSoakHosts; ++h) {
    for (const char* tier : {"hi", "lo"}) {
      Federation::VmStatus s = fed.vm_status(tier + std::to_string(h));
      out.all_home = out.all_home && s.host >= 0 && !s.lost;
    }
  }
  // Byte-identical determinism evidence: the full counter dump minus the
  // alloc section (allocator state is process-history-dependent), plus the
  // per-tier completion tallies and each host's event count.
  rc.alloc_section = false;
  std::ostringstream os;
  PrintResilience(os, rc);
  os << "hi " << wl.hi_mon.total_completed() << "/" << wl.hi_mon.total_misses() << " lo "
     << wl.lo_mon.total_completed() << "/" << wl.lo_mon.total_misses() << "\n";
  for (int h = 0; h < kSoakHosts; ++h) {
    os << "host" << h << " events " << fed.host(h).sim().events_processed() << "\n";
  }
  out.report = os.str();
  return out;
}

// One soak shard = one seed run twice (in-shard byte-identity check). The
// shard report is empty on success and carries the FAIL diagnostics
// otherwise, so the merged output matches the historical serial format while
// the sweep runner (src/sweep) supplies crash/hang containment and --jobs
// parallelism (RTVIRT_CLUSTER_SOAK_JOBS, default 1).
void Soak(int seeds, bool& failed) {
  Header("Cluster soak: randomized host fault plans, " + std::to_string(seeds) +
         " seeds, each run twice (determinism check)");
  sweep::SweepConfig sc;
  sc.max_attempts = 2;
  if (const char* env = std::getenv("RTVIRT_CLUSTER_SOAK_JOBS")) {
    sc.jobs = std::atoi(env);
  }
  sweep::SweepReport rep =
      sweep::RunSweep(sc, seeds, [](const sweep::ShardContext& ctx) {
        uint64_t seed = static_cast<uint64_t>(ctx.shard) + 1;
        SoakOutcome a = RunSoak(seed);
        SoakOutcome b = RunSoak(seed);
        bool deterministic = a.report == b.report;
        sweep::ShardResult out;
        if (deterministic && a.audit_clean && a.none_lost && a.all_home) {
          return out;
        }
        std::ostringstream os;
        os << "seed " << seed << ": FAIL (deterministic=" << deterministic
           << " audit_clean=" << a.audit_clean << " none_lost=" << a.none_lost
           << " all_home=" << a.all_home << ")\n";
        if (!deterministic) {
          os << "--- first run ---\n" << a.report << "--- second run ---\n" << b.report;
        }
        out.report = os.str();
        return out;
      });
  int clean = 0;
  for (int s = 0; s < seeds; ++s) {
    const sweep::ShardOutcome& o = rep.shards[static_cast<size_t>(s)];
    if (o.outcome == sweep::Outcome::kClean && o.report.empty()) {
      ++clean;
    } else if (o.outcome == sweep::Outcome::kClean) {
      std::cout << o.report;
    } else {
      std::cout << "seed " << (s + 1) << ": " << sweep::OutcomeName(o.outcome)
                << " (attempts=" << o.attempts << ": " << o.reason << ")\n";
    }
  }
  std::cout << "check: " << clean << "/" << seeds << " seeds clean => "
            << (clean == seeds ? "PASS" : "FAIL")
            << " (byte-identical reruns, zero violations, every VM re-homed)\n";
  failed = failed || clean != seeds;
}

}  // namespace
}  // namespace rtvirt::bench

int main() {
  bool failed = false;
  rtvirt::bench::ResilienceTimeline(failed);
  if (const char* env = std::getenv("RTVIRT_CLUSTER_SOAK_SEEDS");
      env != nullptr && std::atoi(env) > 0) {
    rtvirt::bench::Soak(std::atoi(env), failed);
  }
  return failed ? 1 : 0;
}

// Table 4: tail latency of memcached requests with the memcached VM on a
// dedicated CPU under Credit, RT-Xen and RTVirt. These percentiles are what
// the paper uses to derive each framework's reservation for the contention
// experiments (Figure 5): the 99.9th percentile becomes the RTA slice.

#include <iostream>

#include "bench/bench_util.h"

namespace rtvirt {
namespace {

Samples RunDedicated(Framework fw) {
  ExperimentConfig cfg = bench::Config(fw, 1);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("memcached", 1);
  if (fw == Framework::kRtXen) {
    // Generous interface: the VM owns the CPU.
    exp.SetVcpuServer(g->vm()->vcpu(0), ServerParams{Us(450), Us(500)});
  }
  DeadlineMonitor mon;
  MemcachedConfig mcfg;  // 100 qps Mutilate model, 500 us SLO.
  MemcachedServer server(g, "mc", mcfg, exp.rng().Fork());
  server.task()->set_observer(&mon);
  // 100 qps for 200 s: 20k requests, enough for a stable 99.9th percentile.
  server.Start(0, Sec(200));
  exp.Run(Sec(200) + Ms(10));
  return mon.response_times_us();
}

}  // namespace
}  // namespace rtvirt

int main() {
  using namespace rtvirt;
  bench::Header("Table 4: memcached request latency on a dedicated CPU (us)");
  TablePrinter table({"Scheduler", "90th", "95th", "99th", "99.9th", "paper 99.9th"});
  struct Row {
    Framework fw;
    const char* name;
    const char* paper;
  };
  for (const Row& row : {Row{Framework::kCredit, "Credit", "129.1"},
                         Row{Framework::kRtXen, "RT-Xen", "65.7"},
                         Row{Framework::kRtvirt, "RTVirt", "57.5"}}) {
    Samples s = RunDedicated(row.fw);
    table.AddRow({row.name, TablePrinter::Fmt(s.Percentile(90), 1),
                  TablePrinter::Fmt(s.Percentile(95), 1), TablePrinter::Fmt(s.Percentile(99), 1),
                  TablePrinter::Fmt(s.Percentile(99.9), 1), row.paper});
  }
  table.Print(std::cout);
  std::cout << "\nThe 99.9th percentile defines each framework's reservation slice for the\n"
               "Figure 5 experiments (paper: 58 us RTVirt, 66 us RT-Xen, 26% share Credit).\n";
  return 0;
}

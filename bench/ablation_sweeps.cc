// Ablations of RTVirt's design parameters and section 6 extensions:
//   1. VCPU budget slack (paper: 500 us) vs deadline misses;
//   2. minimum global slice (paper: 250 us) vs overhead and tail latency;
//   3. replan-on-wake vs sporadic tail latency;
//   4. pEDF vs gEDF guest scheduling (paper section 3.2's design choice);
//   5. CPU affinity (section 6) vs migrations;
//   6. the idle tax (section 6) reclaiming hoarded bandwidth.

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace rtvirt {
namespace {

// ---- 1. Budget slack sweep ----

void SlackSweep() {
  bench::Header("Ablation 1: VCPU budget slack vs deadline misses (NH-Inc group, 50 s)");
  TablePrinter table({"slack", "reserved CPUs", "jobs", "misses", "miss ratio"});
  const RtaGroup& group = kTable1Groups[5];
  for (TimeNs slack : {Us(0), Us(50), Us(100), Us(250), Us(500), Ms(1)}) {
    ExperimentConfig cfg = bench::Config(Framework::kRtvirt);
    cfg.channel.budget_slack = slack;
    Experiment exp(cfg);
    DeadlineMonitor mon;
    std::vector<std::unique_ptr<PeriodicRta>> rtas;
    for (size_t i = 0; i < group.rtas.size(); ++i) {
      GuestOs* g = exp.AddGuest("vm" + std::to_string(i), 1);
      rtas.push_back(std::make_unique<PeriodicRta>(g, "rta" + std::to_string(i),
                                                   group.rtas[i]));
      rtas.back()->task()->set_observer(&mon);
      rtas.back()->Start(0, Sec(50));
    }
    exp.Run(Sec(25));
    Bandwidth reserved = exp.dpwrap()->total_reserved();
    exp.Run(Sec(50) + Ms(300));
    table.AddRow({TablePrinter::Fmt(ToUs(slack), 0) + " us", bench::Cpus(reserved),
                  std::to_string(mon.total_completed()), std::to_string(mon.total_misses()),
                  TablePrinter::Pct(mon.TotalMissRatio(), 3)});
  }
  table.Print(std::cout);
  std::cout << "Slack pays for scheduling overheads: too little -> misses; the paper's\n"
               "500 us eliminates them at ~2% extra bandwidth.\n";
}

// ---- 2. Minimum global slice sweep ----

void MinSliceSweep() {
  bench::Header("Ablation 2: minimum global slice vs overhead (memcached + 4 video VMs, 60 s)");
  TablePrinter table({"min slice", "replans", "overhead %", "mc p99.9 (us)", "video misses"});
  for (TimeNs min_slice : {Us(50), Us(100), Us(250), Us(500), Ms(1), Ms(2)}) {
    ExperimentConfig cfg = bench::Config(Framework::kRtvirt, 4);
    cfg.dpwrap.min_global_slice = min_slice;
    Experiment exp(cfg);
    DeadlineMonitor video_mon;
    DeadlineMonitor mc_mon;
    std::vector<std::unique_ptr<PeriodicRta>> videos;
    for (int i = 0; i < 4; ++i) {
      GuestOs* g = exp.AddGuest("video" + std::to_string(i), 1);
      videos.push_back(std::make_unique<PeriodicRta>(g, "v" + std::to_string(i),
                                                     VlcParams(kVlcProfiles[i % 4].fps)));
      videos.back()->task()->set_observer(&video_mon);
      videos.back()->Start(0, Sec(60));
    }
    GuestOs* mc = exp.AddGuest("mc", 1);
    bench::SetMicroSlack(exp, mc);
    MemcachedServer server(mc, "mc", MemcachedConfig{}, exp.rng().Fork());
    server.task()->set_observer(&mc_mon);
    server.Start(0, Sec(60));
    exp.Run(Sec(60) + Ms(100));
    table.AddRow({TablePrinter::Fmt(ToUs(min_slice), 0) + " us",
                  std::to_string(exp.dpwrap()->replans()),
                  TablePrinter::Pct(exp.machine().overhead().Fraction(Sec(60), 4), 3),
                  TablePrinter::Fmt(mc_mon.response_times_us().Percentile(99.9), 1),
                  std::to_string(video_mon.total_misses()) + "/" +
                      std::to_string(video_mon.total_completed())});
  }
  table.Print(std::cout);
  std::cout << "Shorter slices track deadlines more closely but replan more often; the\n"
               "paper's 250 us bounds the overhead without hurting the SLO.\n";
}

// ---- 3. Replan-on-wake ----

void ReplanOnWake() {
  bench::Header("Ablation 3: replan-on-wake vs sporadic tail latency (fig 5a RTVirt setup)");
  TablePrinter table({"replan_on_wake", "mean (us)", "p99 (us)", "p99.9 (us)", "SLO met"});
  for (bool on : {true, false}) {
    ExperimentConfig cfg = bench::Config(Framework::kRtvirt, 2);
    cfg.dpwrap.replan_on_wake = on;
    Experiment exp(cfg);
    GuestOs* mc = exp.AddGuest("mc", 1);
    bench::SetMicroSlack(exp, mc);
    for (int i = 0; i < 19; ++i) {
      exp.AddGuest("hog" + std::to_string(i), 1)->CreateBackgroundTask("bg");
    }
    DeadlineMonitor mon;
    MemcachedServer server(mc, "mc", MemcachedConfig{}, exp.rng().Fork());
    server.task()->set_observer(&mon);
    server.Start(0, Sec(120));
    exp.Run(Sec(120) + Ms(10));
    const Samples& lat = mon.response_times_us();
    table.AddRow({on ? "on (default)" : "off", TablePrinter::Fmt(lat.Mean(), 1),
                  TablePrinter::Fmt(lat.Percentile(99), 1),
                  TablePrinter::Fmt(lat.Percentile(99.9), 1),
                  lat.Percentile(99.9) <= 500.0 ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "Without replan-on-wake a request waits for the VCPU's next segment\n"
               "(up to a period); the paper's 379 us tail sits between the two modes.\n";
}

// ---- 4. pEDF vs gEDF guest ----

void GuestSchedClassAblation() {
  bench::Header("Ablation 4: pEDF vs gEDF guest scheduling (1 VM, 4 VCPUs, 8 RTAs, 30 s)");
  TablePrinter table({"guest class", "admitted", "jobs", "misses", "hypercalls",
                      "host reservation"});
  for (GuestSchedClass cls : {GuestSchedClass::kPartitionedEdf, GuestSchedClass::kGlobalEdf}) {
    ExperimentConfig cfg = bench::Config(Framework::kRtvirt, 8);
    Experiment exp(cfg);
    GuestConfig gcfg;
    gcfg.sched_class = cls;
    GuestOs* g = exp.AddGuest("vm", 4, gcfg);
    DeadlineMonitor mon;
    std::vector<std::unique_ptr<PeriodicRta>> rtas;
    int admitted = 0;
    for (int i = 0; i < 8; ++i) {
      RtaParams p{Ms(2 + i), Ms(10 + 2 * i), false};
      rtas.push_back(std::make_unique<PeriodicRta>(g, "rta" + std::to_string(i), p));
      rtas.back()->task()->set_observer(&mon);
      rtas.back()->Start(0, Sec(30));
    }
    exp.Run(Sec(15));
    Bandwidth reserved = exp.dpwrap()->total_reserved();
    for (const auto& r : rtas) {
      admitted += r->admission_result() == kGuestOk ? 1 : 0;
    }
    exp.Run(Sec(30) + Ms(100));
    table.AddRow({cls == GuestSchedClass::kPartitionedEdf ? "pEDF (paper)" : "gEDF",
                  std::to_string(admitted) + "/8", std::to_string(mon.total_completed()),
                  std::to_string(mon.total_misses()),
                  std::to_string(exp.machine().overhead().hypercalls), bench::Cpus(reserved)});
  }
  table.Print(std::cout);
  std::cout << "gEDF must reserve equal shares on every VCPU and publish one global\n"
               "deadline (more hypercalls, coarser reservations) -- the complexity the\n"
               "paper avoids by modifying SCHED_DEADLINE to pEDF.\n";
}

// ---- 5. CPU affinity ----

void AffinityAblation() {
  bench::Header("Ablation 5: CPU affinity (section 6) vs migrations (5 VMs, 3 PCPUs, 30 s)");
  TablePrinter table({"config", "total migrations", "pinned VM migrations", "misses"});
  for (bool pin : {false, true}) {
    ExperimentConfig cfg = bench::Config(Framework::kRtvirt, 3);
    Experiment exp(cfg);
    DeadlineMonitor mon;
    std::vector<std::unique_ptr<PeriodicRta>> rtas;
    std::vector<GuestOs*> guests;
    for (int i = 0; i < 5; ++i) {
      GuestOs* g = exp.AddGuest("vm" + std::to_string(i), 1);
      guests.push_back(g);
      rtas.push_back(std::make_unique<PeriodicRta>(g, "rta" + std::to_string(i),
                                                   RtaParams{Ms(10), Ms(20), false}));
      rtas.back()->task()->set_observer(&mon);
      rtas.back()->Start(0, Sec(30));
    }
    if (pin) {
      exp.dpwrap()->SetAffinity(guests[0]->vm()->vcpu(0), 0);  // Cache-sensitive VM.
    }
    exp.Run(Sec(30) + Ms(100));
    table.AddRow({pin ? "VM0 pinned to PCPU0" : "no affinity",
                  std::to_string(exp.machine().overhead().migrations),
                  std::to_string(guests[0]->vm()->vcpu(0)->migrations()),
                  std::to_string(mon.total_misses())});
  }
  table.Print(std::cout);
}

// ---- 6. Idle tax ----

void IdleTaxAblation() {
  bench::Header("Ablation 6: idle tax (section 6) reclaiming hoarded bandwidth (1 PCPU)");
  TablePrinter table({"idle tax", "hoarder claims", "tenant admitted at", "tenant misses"});
  for (bool tax : {false, true}) {
    ExperimentConfig cfg = bench::Config(Framework::kRtvirt, 1);
    cfg.dpwrap.idle_tax.enabled = tax;
    cfg.dpwrap.idle_tax.window = Ms(250);
    Experiment exp(cfg);
    GuestOs* hoarder = exp.AddGuest("hoarder", 1);
    GuestOs* tenant = exp.AddGuest("tenant", 1);
    // The hoarder claims 80% and never uses it.
    Task* claim = hoarder->CreateTask("claim");
    hoarder->SchedSetAttr(claim, RtaParams{Ms(80), Ms(100), false});
    // A real tenant retries a 0.5-CPU RTA every 100 ms.
    DeadlineMonitor mon;
    auto rta = std::make_unique<PeriodicRta>(tenant, "tenant", RtaParams{Ms(50), Ms(100)});
    rta->task()->set_observer(&mon);
    TimeNs admitted_at = -1;
    for (int k = 0; k < 50; ++k) {
      exp.sim().At(Ms(100) * k + 1, [&, k] {
        if (!rta->task()->registered() && admitted_at < 0) {
          if (tenant->SchedSetAttr(rta->task(), RtaParams{Ms(50), Ms(100)}) == kGuestOk) {
            admitted_at = exp.sim().Now();
            tenant->SchedUnregister(rta->task());
            rta->Start(exp.sim().Now() + 1, Sec(10));
          }
        }
      });
    }
    exp.Run(Sec(10) + Ms(200));
    table.AddRow({tax ? "on" : "off", "0.80 CPUs (idle)",
                  admitted_at < 0 ? "never" : TablePrinter::Fmt(ToSec(admitted_at), 2) + " s",
                  admitted_at < 0 ? "-" : std::to_string(mon.total_misses())});
  }
  table.Print(std::cout);
  std::cout << "Without the tax the idle 80% claim blocks the tenant forever; with it,\n"
               "the claim decays to its usage and the tenant is admitted within a few\n"
               "windows (and still meets its deadlines).\n";
}

// ---- 7. Quantum-driven vs event-driven RT-Xen ----

void QuantumVsEventDriven() {
  bench::Header(
      "Ablation 7: RT-Xen quantum- vs event-driven budget enforcement (section 4.5 note)");
  TablePrinter table({"mode", "schedule() calls", "schedule() time", "mc p99.9 (us)"});
  for (TimeNs quantum : {Ms(1), TimeNs{0}}) {
    ExperimentConfig cfg = bench::Config(Framework::kRtXen, 2);
    cfg.server_edf.quantum = quantum;
    Experiment exp(cfg);
    GuestOs* mc = exp.AddGuest("mc", 1);
    exp.SetVcpuServer(mc->vm()->vcpu(0), ServerParams{Us(66), Us(283)});
    mc->SetVcpuCapacity(0, Bandwidth::FromSlicePeriod(Us(66), Us(283)));
    for (int i = 0; i < 19; ++i) {
      exp.AddGuest("hog" + std::to_string(i), 1)->CreateBackgroundTask("bg");
    }
    DeadlineMonitor mon;
    MemcachedConfig mcfg;
    mcfg.slice = Us(66);
    MemcachedServer server(mc, "mc", mcfg, exp.rng().Fork());
    server.task()->set_observer(&mon);
    server.Start(0, Sec(60));
    exp.Run(Sec(60) + Ms(10));
    table.AddRow({quantum > 0 ? "quantum-driven (1 ms, as evaluated)" : "event-driven (newer)",
                  std::to_string(exp.machine().overhead().schedule_calls),
                  TablePrinter::Fmt(ToMs(exp.machine().overhead().schedule_time), 1) + " ms",
                  TablePrinter::Fmt(mon.response_times_us().Percentile(99.9), 1)});
  }
  table.Print(std::cout);
  std::cout << "The quantum version re-enters schedule() every 1 ms on every PCPU -- the\n"
               "higher schedule() time the paper measures for RT-Xen in Table 6.\n";
}

}  // namespace
}  // namespace rtvirt

int main() {
  rtvirt::SlackSweep();
  rtvirt::MinSliceSweep();
  rtvirt::ReplanOnWake();
  rtvirt::GuestSchedClassAblation();
  rtvirt::AffinityAblation();
  rtvirt::IdleTaxAblation();
  rtvirt::QuantumVsEventDriven();
  return 0;
}

// Overload-degradation evaluation (robustness PR): a utilization ramp from
// 0.7x to ~1.8x of host capacity (reservations incl. channel slack), built
// from three criticality tiers of churning RTAs:
//
//   t = 0 s   LOW  tier:  6 x 0.45 CPU elastic (min 0.225) -> demand 0.7x
//   t = 2 s   MED  tier:  4 x 0.45 CPU elastic (min 0.225) -> demand 1.2x
//   t = 4-8 s HIGH tier: 12 x 0.19 CPU inelastic, staggered -> demand 1.8x
//   t = 24 s  HIGH tier unregisters                         -> recovery
//
// Task utilizations deliberately stop short of packing any VCPU to exactly
// 1.0: the channel's budget slack is the margin that drains the transient
// backlog a task accumulates while its admission (or a compression step)
// is still settling. With exact reservations any such transient would turn
// into permanent tardiness — supply would never exceed demand again.
//
// Rejected applications keep retrying every 50 ms (an arrival does not give
// up because the system is busy). Three configurations:
//
//   shed    - mixed-criticality overload control on at both layers (guest
//             elastic compression + shedding, host pressure signal) plus the
//             cross-layer invariant auditor;
//   binary  - the classic admit/reject test (all knobs off): whoever got in
//             first keeps the bandwidth, HIGH arrivals are locked out;
//   none    - no admission protection (epsilon raised past total demand):
//             everything is admitted and the DP-WRAP plan starves the tail.
//
// Acceptance: with shedding, every HIGH RTA is admitted and its miss ratio
// stays ~0 through the ramp; binary locks HIGH arrivals out (or misses);
// none collapses; the auditor observes zero invariant violations.

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/resilience.h"
#include "src/workloads/churn.h"

namespace rtvirt::bench {
namespace {

constexpr TimeNs kRunLength = Sec(30);
constexpr TimeNs kHighStop = Sec(24);
constexpr int kPcpus = 4;
constexpr int kLowTasks = 6;
constexpr int kMedTasks = 4;
constexpr int kHighTasks = 12;
constexpr TimeNs kRetry = Ms(50);

enum class Mode { kShed, kBinary, kNone };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kShed:
      return "shed";
    case Mode::kBinary:
      return "binary";
    case Mode::kNone:
      return "none";
  }
  return "?";
}

struct TierResult {
  int total = 0;
  int admitted = 0;
  uint64_t ontime = 0;  // Completions that met their deadline.
  double miss = 0.0;    // Miss ratio over completed jobs.
};

struct RampResult {
  TierResult hi, med, lo;
  ResilienceCounters rc;
  uint64_t audit_checks = 0;
  uint64_t audit_violations = 0;
};

// One criticality tier: a ChurnDriver whose every slot runs a single fixed
// profile episode for the whole window (the churn machinery provides the
// staggered arrivals and the retry loop).
ChurnConfig Tier(TimeNs start_at, TimeNs stagger, TimeNs stop, RtaParams profile,
                 Criticality crit, double elastic_min) {
  ChurnConfig c;
  c.experiment_len = stop;
  c.min_episode = kRunLength + Sec(10);  // Longer than the window: one
  c.max_episode = kRunLength + Sec(10);  // episode per slot, capped at stop.
  c.max_gap = stagger;
  c.idle_prob = 0.0;
  c.start_at = start_at;
  c.criticality = crit;
  c.elastic_min_fraction = elastic_min;
  c.profile = profile;
  c.admission_retry = kRetry;
  return c;
}

TierResult Summarize(const ChurnDriver& churn, const DeadlineMonitor& mon) {
  TierResult r;
  for (const auto& rta : churn.rtas()) {
    ++r.total;
    if (rta->admitted_at() != kTimeNever) {
      ++r.admitted;
    }
  }
  r.ontime = mon.total_completed() - mon.total_misses();
  r.miss = mon.TotalMissRatio();
  return r;
}

RampResult RunRamp(Mode mode) {
  ExperimentConfig cfg = Config(Framework::kRtvirt, kPcpus);
  if (mode == Mode::kShed) {
    cfg.dpwrap.overload.enabled = true;
    // Clear pressure once the compressed system fits comfortably; the
    // default 0.85 sits exactly on this scenario's post-shed utilization.
    cfg.dpwrap.overload.low_watermark = 0.90;
    cfg.audit.enabled = true;
  } else if (mode == Mode::kNone) {
    // Ablation: admission never says no (epsilon beyond total demand).
    cfg.dpwrap.admission_epsilon_ppb = Bandwidth::Cpus(16).ppb();
  }
  GuestConfig gcfg;
  gcfg.overload.enabled = mode == Mode::kShed;

  Experiment exp(cfg);
  GuestOs* lo = exp.AddGuest("lo", kLowTasks, gcfg);
  GuestOs* med = exp.AddGuest("med", kMedTasks, gcfg);
  GuestOs* hi = exp.AddGuest("hi", kHighTasks, gcfg);

  DeadlineMonitor lo_mon, med_mon, hi_mon;
  RtaParams half{Us(4500), Ms(10)};
  RtaParams fifth{Us(1900), Ms(10)};
  ChurnDriver lo_churn(lo, Tier(0, Ms(500), kRunLength, half, Criticality::kLow, 0.5),
                       Rng(101), &lo_mon);
  ChurnDriver med_churn(med, Tier(Sec(2), Ms(500), kRunLength, half, Criticality::kMed, 0.5),
                        Rng(102), &med_mon);
  ChurnDriver hi_churn(hi, Tier(Sec(4), Sec(4), kHighStop, fifth, Criticality::kHigh, 1.0),
                       Rng(103), &hi_mon);
  lo_churn.Start();
  med_churn.Start();
  hi_churn.Start();
  std::function<void()> sample;
  if (std::getenv("RTVIRT_RAMP_TRACE") != nullptr) {
    sample = [&] {
      std::cout << "t=" << exp.sim().Now() / Ms(1) << "ms hi=" << hi_mon.total_completed()
                << "/" << hi_mon.total_misses() << " med=" << med_mon.total_completed()
                << "/" << med_mon.total_misses() << " lo=" << lo_mon.total_completed()
                << "/" << lo_mon.total_misses()
                << " host=" << exp.dpwrap()->total_reserved().ppb() / 1000000
                << " pressure=" << exp.dpwrap()->pressure() << "\n";
      if (exp.sim().Now() < kRunLength) {
        exp.sim().After(Ms(500), sample);
      }
    };
    exp.sim().After(Ms(500), sample);
  }
  exp.Run(kRunLength);

  RampResult r;
  r.hi = Summarize(hi_churn, hi_mon);
  r.med = Summarize(med_churn, med_mon);
  r.lo = Summarize(lo_churn, lo_mon);
  r.rc = exp.resilience();
  if (exp.auditor() != nullptr) {
    r.audit_checks = exp.auditor()->checks_run();
    r.audit_violations = exp.auditor()->total_violations();
    for (const AuditViolation& v : exp.auditor()->violations()) {
      std::cout << "audit violation @" << v.time << " ns [" << v.invariant << "] "
                << v.detail << "\n";
    }
  }
  return r;
}

std::string Adm(const TierResult& t) {
  return std::to_string(t.admitted) + "/" + std::to_string(t.total);
}

void OverloadRamp() {
  Header("Overload ramp (0.7x -> 1.8x demand): criticality-aware shedding "
         "vs binary admission vs no protection");
  TablePrinter table({"config", "hi_adm", "hi_ontime", "hi_miss", "med_adm", "med_miss",
                      "lo_adm", "lo_miss", "sheds", "compr", "resumes", "expand",
                      "pressure"});
  RampResult shed, binary, none;
  for (Mode mode : {Mode::kShed, Mode::kBinary, Mode::kNone}) {
    RampResult r = RunRamp(mode);
    table.AddRow({ModeName(mode), Adm(r.hi), std::to_string(r.hi.ontime), Pct(r.hi.miss),
                  Adm(r.med), Pct(r.med.miss), Adm(r.lo), Pct(r.lo.miss),
                  std::to_string(r.rc.sheds), std::to_string(r.rc.compressions),
                  std::to_string(r.rc.resumes), std::to_string(r.rc.expansions),
                  std::to_string(r.rc.pressure_raises) + "/" +
                      std::to_string(r.rc.pressure_clears)});
    switch (mode) {
      case Mode::kShed:
        shed = r;
        break;
      case Mode::kBinary:
        binary = r;
        break;
      case Mode::kNone:
        none = r;
        break;
    }
  }
  table.Print(std::cout);

  bool shed_ok = shed.hi.admitted == shed.hi.total && shed.hi.miss <= 0.005 &&
                 shed.rc.sheds > 0 && shed.rc.resumes > 0;
  bool audit_ok = shed.audit_checks > 0 && shed.audit_violations == 0;
  bool binary_shows = binary.hi.admitted < binary.hi.total || binary.hi.miss > 0.02;
  bool none_shows = none.hi.miss > 0.02 || none.hi.ontime < shed.hi.ontime / 2;
  std::cout << "check: shed hi " << Adm(shed.hi) << " miss=" << Pct(shed.hi.miss)
            << " sheds=" << shed.rc.sheds << " resumes=" << shed.rc.resumes << " => "
            << (shed_ok ? "PASS" : "FAIL") << " (all HIGH admitted, ~0 misses)\n";
  std::cout << "check: audit checks=" << shed.audit_checks << " violations="
            << shed.audit_violations << " => " << (audit_ok ? "PASS" : "FAIL")
            << " (auditor ran clean)\n";
  std::cout << "check: binary hi " << Adm(binary.hi) << " miss=" << Pct(binary.hi.miss)
            << " => " << (binary_shows ? "PASS" : "FAIL")
            << " (binary admission locks HIGH out or misses)\n";
  std::cout << "check: none hi ontime=" << none.hi.ontime << " miss=" << Pct(none.hi.miss)
            << " vs shed ontime=" << shed.hi.ontime << " => "
            << (none_shows ? "PASS" : "FAIL") << " (no protection collapses)\n";
}

}  // namespace
}  // namespace rtvirt::bench

int main() {
  rtvirt::bench::OverloadRamp();
  return 0;
}

// Closed-loop SLO control over a flash crowd (robustness PR, DESIGN.md §9).
//
// One core, one memcached tenant against a bursty 60%-reservation hog — the
// operating point where DP-WRAP's work conservation stops hiding an
// under-sized reservation: within each 6 ms hog burst the tenant progresses
// at its *guaranteed* rate only, so a flash crowd blows the 1 ms p99.9 SLO
// unless somebody raises the reservation. Four provisioning policies face
// the same seeded open-loop trace (diurnal swing + 3x flash crowd):
//
//   controller  SloController steering the reservation over the guest
//               channel (hysteresis, anti-windup, demand-floored DEC,
//               rate limit, saturation handoff, fail-static freeze).
//   faulted     Same controller, but a per-VM channel outage covers the
//               post-flash reclaim — the DEC chain fails, the tenant
//               freezes at its last-good (raised) reservation, re-engages
//               after the outage heals, and finishes the reclaim.
//   frozen      The initial 58 us reservation, never adjusted: what the
//               flash does to a statically right-sized-for-the-average
//               tenant.
//   static      240 us from t=0: the overprovisioned ceiling the controller
//               reaches only while the flash needs it.
//
// Gates (per seed): the controller meets the SLO the frozen baseline
// drowns under (miss ratio < 1% vs > 5%); it reclaims the flash-time
// reservation afterwards (final slice well under the static ceiling, with
// DEC adjustments on record); it is never quarantined by guest_trust, never
// trips the invariant auditor, resolves every saturation handoff, and in
// the faulted mode freezes and re-engages instead of thrashing. The
// controller row is additionally computed twice and must be byte-identical
// (the whole loop is deterministic given the seed).
//
// Seeds fan out through the supervised sweep runner exactly like
// fault_soak: `--seeds=N --jobs=M` (env RTVIRT_SLO_SEEDS / RTVIRT_SLO_JOBS
// are lower-precedence equivalents), crashed or hung seeds become recorded
// shard outcomes, and the merged table is byte-identical for any jobs count.

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/control/slo_controller.h"
#include "src/faults/fault_injector.h"
#include "src/metrics/resilience.h"
#include "src/sweep/sweep.h"

namespace rtvirt::bench {
namespace {

constexpr TimeNs kRun = Sec(6);
constexpr TimeNs kSlo = Ms(1);
constexpr TimeNs kBaseSlice = Us(58);
constexpr TimeNs kMaxSlice = Us(240);  // Host ceiling under the 0.65 hog.
constexpr TimeNs kFlashStart = Sec(2);
constexpr TimeNs kFlashEnd = Sec(4);

enum SeedStream : uint64_t { kArrivalStream = 0, kServiceStream = 1 };

enum class Mode { kController, kFaulted, kFrozen, kStatic };

ControlConfig Control() {
  ControlConfig c;
  c.enabled = true;
  // A flash crowd is an emergency: climb aggressively (50% steps, 10 ms
  // ticks, 8 adjustments per 100 ms). Still two orders of magnitude inside
  // the guest_trust budgets (2000 calls/s bucket, 32 INC/DEC flips/100 ms).
  c.decision_period = Ms(10);
  c.step_fraction = 0.5;
  c.max_adjust_per_window = 8;
  c.min_samples = 16;
  c.window.num_slots = 8;
  c.window.slot_width = Ms(50);
  return c;
}

struct ModeResult {
  uint64_t completed = 0;
  uint64_t misses = 0;
  double miss_ratio = 0.0;
  double p999_us = 0.0;
  TimeNs final_slice = 0;
  ControlStats ctl;
  uint64_t unresolved_saturations = 0;
  bool frozen_at_end = false;
  uint64_t quarantines = 0;
  uint64_t audit_violations = 0;
  uint64_t outage_failures = 0;
};

ModeResult RunMode(Mode mode, uint64_t seed) {
  ExperimentConfig cfg = Config(Framework::kRtvirt, /*pcpus=*/1);
  cfg.seed = seed;
  cfg.channel.max_retries = 2;
  cfg.channel.degraded_fallback = true;
  cfg.audit.enabled = true;
  bool controlled = mode == Mode::kController || mode == Mode::kFaulted;
  if (controlled) {
    cfg.control = Control();
  }
  if (mode == Mode::kFaulted) {
    // The outage covers the post-flash reclaim window — the one stretch
    // where every seed is guaranteed to actuate (a diurnal tail spike can
    // complete the INC chain before the flash even starts, but the DEC
    // chain always runs once the flash ends and the demand EMA decays).
    // Fail-static must freeze the tenant at its last-good *raised*
    // reservation, so the outage costs reclaim latency, never the SLO.
    cfg.faults.control_faults.push_back(
        {FaultPlan::ControlFault::Kind::kChannelOutage, /*vm_index=*/0,
         kFlashEnd, kFlashEnd + Ms(700), Us(200)});
  }
  Experiment exp(std::move(cfg));
  GuestOs* tenant = exp.AddGuest("tenant", 1);
  GuestOs* hog = exp.AddGuest("hog", 1);

  MemcachedConfig mc;
  mc.qps = 2000.0;
  mc.slo = kSlo;
  mc.slice = mode == Mode::kStatic ? kMaxSlice : kBaseSlice;
  mc.open_loop.enabled = true;
  mc.open_loop.diurnal_amplitude = 0.25;
  mc.open_loop.diurnal_period = Sec(5);
  // Flash peak ~= 2000 * 1.25 * 2.4 = 6000 qps (~0.29 CPU): saturating for
  // a 58 us reservation, comfortably servable at the 240 us host ceiling.
  mc.open_loop.phases.push_back({kFlashStart, kFlashEnd, 2.4});
  MemcachedServer server(tenant, "mc", mc, Rng(DeriveSeed(seed, kArrivalStream)));
  server.Start(0, kRun);

  RtaParams hp;
  hp.slice = Ms(6);
  hp.period = Ms(10);
  PeriodicRta hog_rta(hog, "hog", hp);
  hog_rta.Start(0, kRun);

  DeadlineMonitor mon;
  mon.Watch(server.task());
  if (controlled) {
    SloController::TenantOptions topts;
    topts.slo = kSlo;
    topts.max_slice = kMaxSlice;
    exp.controller()->Watch(tenant, server.task(), exp.ChannelOf(tenant), topts);
  }
  exp.Run(kRun);

  ModeResult r;
  r.completed = mon.total_completed();
  r.misses = mon.total_misses();
  r.miss_ratio = mon.TotalMissRatio();
  r.p999_us = mon.response_times_us().Percentile(99.9);
  r.final_slice = controlled ? exp.controller()->CurrentSlice(server.task())
                             : server.task()->params().slice;
  if (controlled) {
    r.ctl = exp.controller()->stats();
    r.unresolved_saturations = exp.controller()->unresolved_saturations();
    r.frozen_at_end = exp.controller()->Frozen(server.task());
  }
  r.quarantines = exp.dpwrap()->quarantines();
  ResilienceCounters rc = exp.resilience();
  r.audit_violations = rc.audit_violations;
  r.outage_failures = rc.control_outage_failures;
  return r;
}

struct SeedVerdict {
  ModeResult ctl, faulted, frozen, overprov;
  bool ok = false;
  std::string why;
};

SeedVerdict JudgeSeed(uint64_t seed) {
  SeedVerdict v;
  v.ctl = RunMode(Mode::kController, seed);
  v.faulted = RunMode(Mode::kFaulted, seed);
  v.frozen = RunMode(Mode::kFrozen, seed);
  v.overprov = RunMode(Mode::kStatic, seed);

  auto fail = [&v](const std::string& why) { v.why = why; };
  if (v.ctl.miss_ratio >= 0.01) {
    fail("controller missed the SLO band");
  } else if (v.frozen.miss_ratio <= 0.05) {
    fail("frozen baseline not stressed (scenario bug)");
  } else if (v.overprov.miss_ratio >= 0.01) {
    fail("static overprovision missed (scenario bug)");
  } else if (v.ctl.ctl.inc_adjustments == 0 || v.ctl.ctl.dec_adjustments == 0) {
    fail("controller never both raised and reclaimed");
  } else if (v.ctl.final_slice >= kMaxSlice) {
    fail("controller failed to reclaim after the flash");
  } else if (v.ctl.unresolved_saturations > 0 || v.faulted.unresolved_saturations > 0) {
    fail("saturation handoff never resolved");
  } else if (v.ctl.frozen_at_end || v.faulted.frozen_at_end) {
    fail("controller still frozen at end of run");
  } else if (v.ctl.quarantines + v.faulted.quarantines + v.frozen.quarantines +
                 v.overprov.quarantines >
             0) {
    fail("controller-caused quarantine");
  } else if (v.ctl.audit_violations + v.faulted.audit_violations +
                 v.frozen.audit_violations + v.overprov.audit_violations >
             0) {
    fail("audit violations");
  } else if (v.faulted.outage_failures == 0 || v.faulted.ctl.freezes == 0) {
    fail("outage never starved the controller (scenario bug)");
  } else if (v.faulted.ctl.reengages == 0) {
    fail("controller never re-engaged after the outage");
  } else if (v.faulted.miss_ratio >= v.frozen.miss_ratio) {
    fail("fail-static did worse than never controlling");
  } else {
    v.ok = true;
  }
  return v;
}

std::string Cell(const ModeResult& r) {
  std::ostringstream os;
  os << TablePrinter::Pct(r.miss_ratio, 2) << " p999=" << TablePrinter::Fmt(r.p999_us, 0)
     << "us";
  return os.str();
}

// Shard wire format: one line of tab-separated table cells.
std::string RowFor(uint64_t seed, const SeedVerdict& v) {
  std::ostringstream os;
  os << seed << '\t' << Cell(v.ctl) << '\t' << Cell(v.faulted) << '\t'
     << Cell(v.frozen) << '\t' << Cell(v.overprov) << '\t'
     << v.ctl.ctl.inc_adjustments << '/' << v.ctl.ctl.dec_adjustments << '\t'
     << v.ctl.final_slice / 1000 << "us" << '\t' << v.faulted.ctl.freezes << '/'
     << v.faulted.ctl.reengages << '\t' << (v.ok ? "ok" : v.why);
  return os.str();
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> cells;
  size_t begin = 0;
  while (true) {
    size_t tab = line.find('\t', begin);
    cells.push_back(line.substr(begin, tab == std::string::npos ? tab : tab - begin));
    if (tab == std::string::npos) {
      break;
    }
    begin = tab + 1;
  }
  return cells;
}

struct Options {
  int seeds = 3;
  sweep::SweepConfig sweep;
};

Options Parse(int argc, char** argv) {
  Options opt;
  opt.sweep.jobs = 1;
  opt.sweep.max_attempts = 2;
  opt.sweep.backoff_initial_ms = 50;
  opt.sweep.backoff_cap_ms = 2000;
  if (const char* env = std::getenv("RTVIRT_SLO_SEEDS")) {
    opt.seeds = std::atoi(env);
  }
  if (const char* env = std::getenv("RTVIRT_SLO_JOBS")) {
    opt.sweep.jobs = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0) {
      opt.seeds = std::atoi(arg.substr(8).c_str());
    } else if (arg.rfind("--jobs=", 0) == 0) {
      opt.sweep.jobs = std::atoi(arg.substr(7).c_str());
    } else if (arg == "--isolate=process") {
      opt.sweep.isolation = sweep::Isolation::kProcess;
    } else if (arg == "--isolate=thread") {
      opt.sweep.isolation = sweep::Isolation::kThread;
    } else {
      std::cerr << "slo_control: unknown flag " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

int Bench(const Options& opt) {
  Header("SLO control across a flash crowd: controller vs frozen vs static, " +
         std::to_string(opt.seeds) + " seeds");
  std::cerr << "slo_control: jobs=" << opt.sweep.jobs << "\n";

  sweep::SweepReport rep =
      sweep::RunSweep(opt.sweep, opt.seeds, [](const sweep::ShardContext& ctx) {
        uint64_t seed = static_cast<uint64_t>(ctx.shard) + 1;
        SeedVerdict v = JudgeSeed(seed);
        // Determinism gate: the controller run must be exactly repeatable.
        SeedVerdict v2;
        v2.ctl = RunMode(Mode::kController, seed);
        std::string row = RowFor(seed, v);
        if (v.ok && Cell(v.ctl) != Cell(v2.ctl)) {
          v.ok = false;
          v.why = "controller run not deterministic";
          row = RowFor(seed, v);
        }
        sweep::ShardResult out;
        out.report = row;
        return out;
      });

  TablePrinter table({"seed", "controller", "faulted", "frozen", "static",
                      "inc/dec", "final", "frz/re", "result"});
  int verdict_failures = 0;
  for (int s = 0; s < opt.seeds; ++s) {
    const sweep::ShardOutcome& o = rep.shards[static_cast<size_t>(s)];
    if (o.outcome == sweep::Outcome::kClean) {
      std::vector<std::string> cells = SplitTabs(o.report);
      if (cells.back() != "ok") {
        ++verdict_failures;
      }
      table.AddRow(cells);
    } else {
      table.AddRow({std::to_string(s + 1), "-", "-", "-", "-", "-", "-", "-",
                    std::string(sweep::OutcomeName(o.outcome))});
    }
  }
  table.Print(std::cout);
  std::cout << "sweep: clean=" << rep.clean << " unresolved=" << rep.unresolved
            << " retries=" << rep.retries << " timeouts=" << rep.timeouts
            << " crashes=" << rep.crashes << "\n";

  int failures = verdict_failures + rep.unresolved;
  std::cout << "check: " << (opt.seeds - failures) << "/" << opt.seeds
            << " seeds clean => " << (failures == 0 ? "PASS" : "FAIL") << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace rtvirt::bench

int main(int argc, char** argv) {
  return rtvirt::bench::Bench(rtvirt::bench::Parse(argc, argv));
}

// Micro-benchmarks for the scheduler operations discussed in section 4.5:
// event-queue ops, McNaughton wrap layout, the DP-WRAP replan (O(log n)
// global-deadline computation + O(n) slicing), the sched_rtvirt() hypercall
// round trip, CARTS interface search, and guest-level EDF dispatch.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/carts.h"
#include "src/perf/perf_recorder.h"
#include "src/perf/perf_report.h"
#include "src/rtvirt/wrap_layout.h"
#include "src/runner/experiment.h"
#include "src/sim/event_queue.h"
#include "src/workloads/periodic.h"

namespace rtvirt {
namespace {

void BM_EventQueueSchedulePop(benchmark::State& state) {
  EventQueue q;
  int64_t t = 0;
  for (auto _ : state) {
    q.Schedule(t++, [] {});
    q.Schedule(t + 100, [] {});
    benchmark::DoNotOptimize(q.PopNext());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EventQueueSchedulePop);

void BM_EventQueueCancel(benchmark::State& state) {
  EventQueue q;
  int64_t t = 0;
  for (auto _ : state) {
    auto id = q.Schedule(t++, [] {});
    q.Cancel(id);
    if (q.size() > 4096) {
      state.PauseTiming();
      while (!q.empty()) {
        q.PopNext();
      }
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_EventQueueCancel);

void BM_WrapLayout(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<WrapItem> items;
  TimeNs slice = Us(250);
  for (int i = 0; i < n; ++i) {
    // ~50% total utilization spread over the items, capped at one PCPU each.
    items.push_back(WrapItem{i, std::min(slice, slice * 15 / (2 * n))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(WrapAround(items, slice, 15));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WrapLayout)->Arg(4)->Arg(20)->Arg(100);

// One DP-WRAP global slice: replan + per-PCPU dispatch, with n reserved
// VCPUs. This is the recurring cost the 250 us minimum global slice bounds.
void BM_DpWrapGlobalSlice(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine.num_pcpus = 15;
  Experiment exp(cfg);
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
  for (int i = 0; i < n; ++i) {
    GuestOs* g = exp.AddGuest("vm" + std::to_string(i), 1);
    rtas.push_back(std::make_unique<PeriodicRta>(
        g, "rta", RtaParams{Ms(1), Ms(2 + (i % 7)), false}));
    rtas.back()->Start(0, Sec(100000));
  }
  exp.Run(Ms(10));
  uint64_t replans_before = exp.dpwrap()->replans();
  TimeNs t = Ms(10);
  for (auto _ : state) {
    t += Ms(1);
    exp.Run(t);
  }
  state.counters["replans/iter"] = static_cast<double>(
      exp.dpwrap()->replans() - replans_before) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_DpWrapGlobalSlice)->Arg(5)->Arg(20)->Arg(100);

// sched_rtvirt() round trip: INC_BW admission + deferred replan execution.
void BM_HypercallRoundTrip(benchmark::State& state) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine.num_pcpus = 15;
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  Vcpu* v = g->vm()->vcpu(0);
  exp.Run(1);
  TimeNs t = 1;
  for (auto _ : state) {
    HypercallArgs inc;
    inc.op = SchedOp::kIncBw;
    inc.vcpu_a = v;
    inc.bw_a = Bandwidth::FromDouble(0.5);
    inc.period_a = Ms(10);
    benchmark::DoNotOptimize(exp.machine().Hypercall(v, inc));
    HypercallArgs dec = inc;
    dec.op = SchedOp::kDecBw;
    dec.bw_a = Bandwidth::Zero();
    benchmark::DoNotOptimize(exp.machine().Hypercall(v, dec));
    t += 1000;
    exp.Run(t);  // Drain the deferred replan.
  }
}
BENCHMARK(BM_HypercallRoundTrip);

void BM_CartsInterfaceSearch(benchmark::State& state) {
  std::vector<RtaParams> tasks{{Ms(23), Ms(30), false}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimalInterface(tasks, CartsOptions{Ms(1), 0, 0}));
  }
}
BENCHMARK(BM_CartsInterfaceSearch);

// Guest pEDF dispatch: release -> EDF pick -> completion, with l tasks per
// VCPU (the O(log l) guest-level cost of section 4.5).
void BM_GuestEdfJobCycle(benchmark::State& state) {
  int l = static_cast<int>(state.range(0));
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine.num_pcpus = 2;
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  std::vector<Task*> tasks;
  for (int i = 0; i < l; ++i) {
    Task* t = g->CreateTask("t" + std::to_string(i));
    g->SchedSetAttr(t, RtaParams{Us(10), Ms(10 + i), false});
    tasks.push_back(t);
  }
  exp.Run(1);
  TimeNs t = 1;
  size_t i = 0;
  for (auto _ : state) {
    Task* task = tasks[i++ % tasks.size()];
    g->ReleaseJob(task, Us(10), t + Ms(10));
    t += Us(50);
    exp.Run(t);
  }
}
BENCHMARK(BM_GuestEdfJobCycle)->Arg(1)->Arg(10);

// Forwards everything to the normal console output while capturing each
// run's per-iteration real time, so --perf_json can serialize the results
// into the shared BENCH_*.json schema after the run.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double ns_per_iter;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) {
        continue;
      }
      double iters = run.iterations == 0 ? 1 : static_cast<double>(run.iterations);
      captured_.push_back(Captured{run.benchmark_name(),
                                   run.real_accumulated_time * 1e9 / iters});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Captured>& captured() const { return captured_; }

 private:
  std::vector<Captured> captured_;
};

}  // namespace
}  // namespace rtvirt

int main(int argc, char** argv) {
  // --perf_json=PATH is ours; everything else passes through to the
  // google-benchmark flag parser (--benchmark_filter etc.).
  std::string perf_json;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--perf_json=", 0) == 0) {
      perf_json = arg.substr(12);
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  rtvirt::CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!perf_json.empty()) {
    rtvirt::perf::PerfReport report;
    report.suite = "micro_sched_ops";
    for (const auto& c : reporter.captured()) {
      std::string name = c.name;
      for (char& ch : name) {
        if (ch == '/') {
          ch = '.';  // BM_WrapLayout/20 -> BM_WrapLayout.20
        }
      }
      report.Add(name + ".ns_per_iter", c.ns_per_iter, "ns", false, 0.5);
    }
    report.Add("peak_rss_kb", static_cast<double>(rtvirt::perf::PeakRssKb()),
               "KiB", false, 0.5);
    if (!report.WriteFile(perf_json)) {
      return 1;
    }
  }
  return 0;
}

// perf_gate: diff a fresh BENCH_*.json against a committed baseline.
//
//   perf_gate <baseline.json> <fresh.json> [--scale=F]
//
// Exits 0 when every baseline metric is present and within its tolerance
// band (each metric's own tolerance times --scale; CI passes --scale=3 to
// absorb shared-runner noise), 1 on any regression or missing metric, 2 on
// usage/parse errors. See DESIGN.md §5 for the schema and how to re-baseline.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "src/perf/perf_gate.h"
#include "src/perf/perf_report.h"

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string fresh_path;
  rtvirt::perf::GateOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      options.tolerance_scale = std::atof(arg + 8);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (fresh_path.empty()) {
      fresh_path = arg;
    } else {
      std::fprintf(stderr, "usage: perf_gate <baseline.json> <fresh.json> [--scale=F]\n");
      return 2;
    }
  }
  if (baseline_path.empty() || fresh_path.empty() || options.tolerance_scale <= 0) {
    std::fprintf(stderr, "usage: perf_gate <baseline.json> <fresh.json> [--scale=F]\n");
    return 2;
  }
  std::optional<rtvirt::perf::PerfReport> baseline =
      rtvirt::perf::PerfReport::ParseFile(baseline_path);
  if (!baseline.has_value()) {
    std::fprintf(stderr, "perf_gate: cannot parse baseline %s\n", baseline_path.c_str());
    return 2;
  }
  std::optional<rtvirt::perf::PerfReport> fresh =
      rtvirt::perf::PerfReport::ParseFile(fresh_path);
  if (!fresh.has_value()) {
    std::fprintf(stderr, "perf_gate: cannot parse fresh report %s\n", fresh_path.c_str());
    return 2;
  }
  rtvirt::perf::GateResult result =
      rtvirt::perf::ComparePerf(*baseline, *fresh, options, std::cout);
  return result.ok ? 0 : 1;
}
